"""Tests for the constraint compiler: Table 1 encodings and DiffOutcome
analysis across rule kinds (§3.1-3.4)."""

import pytest

from repro.core.constraints import ConstraintCompiler, DistinguishEncoding
from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sat.solver import solve


def decode(compiler, result):
    assert result.satisfiable
    return compiler.decode_assignment(result.assignment)


class TestMatchesEncoding:
    def test_assert_matches_forces_field(self):
        compiler = ConstraintCompiler()
        compiler.assert_matches(Match.build(nw_src=0x0A000001))
        values = decode(compiler, solve(compiler.cnf))
        assert values[FieldName.NW_SRC] == 0x0A000001

    def test_assert_not_matches_excludes(self):
        compiler = ConstraintCompiler()
        compiler.assert_matches(Match.build(dl_vlan=5))
        compiler.assert_not_matches(Match.build(dl_vlan=5))
        assert solve(compiler.cnf).satisfiable is False

    def test_not_matches_wildcard_is_unsat(self):
        compiler = ConstraintCompiler()
        compiler.assert_not_matches(Match.wildcard())
        assert solve(compiler.cnf).satisfiable is False

    def test_prefix_match_constrains_only_prefix(self):
        compiler = ConstraintCompiler()
        compiler.assert_matches(Match.build(nw_dst=(0x0A000000, 8)))
        values = decode(compiler, solve(compiler.cnf))
        assert (values[FieldName.NW_DST] >> 24) == 0x0A

    def test_value_in_small_domain(self):
        compiler = ConstraintCompiler()
        compiler.assert_value_in(FieldName.IN_PORT, [3, 5])
        values = decode(compiler, solve(compiler.cnf))
        assert values[FieldName.IN_PORT] in (3, 5)

    def test_value_in_conflicts_with_match(self):
        compiler = ConstraintCompiler()
        compiler.assert_matches(Match.build(in_port=7))
        compiler.assert_value_in(FieldName.IN_PORT, [3, 5])
        assert solve(compiler.cnf).satisfiable is False


class TestDiffPorts:
    def rule(self, actions, priority=5, **match):
        return Rule(
            priority=priority, match=Match.build(**match), actions=actions
        )

    def test_unicast_different_ports(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(
            self.rule(output(1)), self.rule(output(2))
        ) is True

    def test_unicast_same_port_no_rewrites(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(
            self.rule(output(1)), self.rule(output(1))
        ) is False

    def test_drop_vs_unicast(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(
            self.rule(drop()), self.rule(output(1))
        ) is True

    def test_drop_vs_drop(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(
            self.rule(drop()), self.rule(drop())
        ) is False

    def test_drop_vs_table_miss(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(self.rule(drop()), None) is False

    def test_forward_vs_table_miss(self):
        compiler = ConstraintCompiler()
        assert compiler.diff_outcome(self.rule(output(1)), None) is True

    def test_multicast_different_sets(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(multicast([1, 2])), self.rule(multicast([1, 3]))
            )
            is True
        )

    def test_multicast_same_sets_no_rewrites(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(multicast([1, 2])), self.rule(multicast([1, 2]))
            )
            is False
        )

    def test_ecmp_vs_ecmp_intersecting(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(ecmp([1, 2])), self.rule(ecmp([2, 3]))
            )
            is False
        )

    def test_ecmp_vs_ecmp_disjoint(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(ecmp([1, 2])), self.rule(ecmp([3, 4]))
            )
            is True
        )

    def test_multicast_vs_ecmp_escaping_port(self):
        compiler = ConstraintCompiler()
        # Multicast reaches port 4 which the ECMP never uses.
        assert (
            compiler.diff_outcome(
                self.rule(multicast([1, 4])), self.rule(ecmp([1, 2]))
            )
            is True
        )

    def test_multicast_vs_ecmp_counting_exception(self):
        compiler = ConstraintCompiler()
        # Multicast set inside the ECMP set but |F1|=2 != 1: countable.
        assert (
            compiler.diff_outcome(
                self.rule(multicast([1, 2])), self.rule(ecmp([1, 2, 3]))
            )
            is True
        )

    def test_unicast_inside_ecmp_not_distinguishable_by_ports(self):
        compiler = ConstraintCompiler()
        # |F1|=1 and inside the ECMP set, no rewrites: ambiguous.
        assert (
            compiler.diff_outcome(
                self.rule(output(1)), self.rule(ecmp([1, 2]))
            )
            is False
        )


class TestDiffRewrite:
    def rule(self, actions, priority=5):
        return Rule(priority=priority, match=Match.wildcard(), actions=actions)

    def probe_satisfying(self, compiler, diff_lit):
        compiler.cnf.add_unit(diff_lit)
        result = solve(compiler.cnf)
        if not result.satisfiable:
            return None
        return compiler.decode_assignment(result.assignment)

    def test_same_port_rewrite_distinguishable_for_right_probe(self):
        compiler = ConstraintCompiler()
        lit = compiler.diff_outcome(
            self.rule(output(1, nw_tos=0x2A)), self.rule(output(1))
        )
        assert not isinstance(lit, bool)
        values = self.probe_satisfying(compiler, lit)
        # A probe with ToS != 0x2A witnesses the rewrite difference.
        assert values is not None
        assert values[FieldName.NW_TOS] != 0x2A

    def test_identical_rewrites_not_distinguishable(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(output(1, nw_tos=5)), self.rule(output(1, nw_tos=5))
            )
            is False
        )

    def test_conflicting_constant_rewrites_always_distinguishable(self):
        compiler = ConstraintCompiler()
        assert (
            compiler.diff_outcome(
                self.rule(output(1, nw_tos=1)), self.rule(output(1, nw_tos=2))
            )
            is True
        )

    def test_probe_with_tos_equal_rewrite_is_excluded(self):
        # The strawman from §3.2: probe already carrying ToS=voice can't
        # witness rewrite(ToS<-voice) vs no-rewrite.
        compiler = ConstraintCompiler()
        lit = compiler.diff_outcome(
            self.rule(output(1, nw_tos=0x2A)), self.rule(output(1))
        )
        compiler.assert_matches(Match.build(nw_tos=0x2A))
        compiler.cnf.add_unit(lit)
        assert solve(compiler.cnf).satisfiable is False

    def test_ecmp_rewrite_needs_all_common_ports(self):
        from repro.openflow.actions import ActionList, EcmpGroup, SetField

        compiler = ConstraintCompiler()
        # ECMP rewrites ToS on port 1 only; multicast rewrites nothing.
        group = ActionList(
            (
                EcmpGroup(
                    ports=(1, 2),
                    rewrites=((1, (SetField(FieldName.NW_TOS, 7),)),),
                ),
            )
        )
        lit = compiler.diff_outcome(
            self.rule(ActionList((EcmpGroup(ports=(1, 2)),))),
            self.rule(group),
        )
        # Port 2 has identical (empty) rewrites on both: the per-port
        # conjunction contains a False -> constant False.
        assert lit is False


class TestDistinguishChain:
    def build_table_example(self, encoding):
        """The §3.1 example: probe must exist for Rprobed."""
        compiler = ConstraintCompiler(encoding=encoding)
        src, dst = 0x0A000001, 0x0A000002
        rlowest = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        rlower = Rule(
            priority=5, match=Match.build(nw_src=src), actions=output(2)
        )
        rprobed = Rule(
            priority=10,
            match=Match.build(nw_src=src, nw_dst=dst),
            actions=output(1),
        )
        compiler.assert_matches(rprobed.match)
        compiler.assert_distinguish(rprobed, [rlower, rlowest])
        return compiler

    @pytest.mark.parametrize(
        "encoding",
        [DistinguishEncoding.ASSERTED_CHAIN, DistinguishEncoding.VELEV_ITE],
    )
    def test_paper_example_satisfiable_with_both_encodings(self, encoding):
        compiler = self.build_table_example(encoding)
        values = decode(compiler, solve(compiler.cnf))
        # The only valid probes match Rlower (so the absence of Rprobed
        # diverts to port 2): nw_src is pinned by Hit already.
        assert values[FieldName.NW_SRC] == 0x0A000001

    @pytest.mark.parametrize(
        "encoding",
        [DistinguishEncoding.ASSERTED_CHAIN, DistinguishEncoding.VELEV_ITE],
    )
    def test_shadowing_same_output_unsat(self, encoding):
        compiler = ConstraintCompiler(encoding=encoding)
        rlow = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        rhigh = Rule(
            priority=10, match=Match.build(nw_src=1), actions=output(1)
        )
        compiler.assert_matches(rhigh.match)
        compiler.assert_distinguish(rhigh, [rlow])
        assert solve(compiler.cnf).satisfiable is False

    def test_encodings_agree_on_random_chains(self):
        from repro.sim.random import DeterministicRandom

        rng = DeterministicRandom(5)
        for _ in range(25):
            rules = []
            for priority in range(1, rng.randint(2, 6)):
                match_kwargs = {}
                if rng.random() < 0.8:
                    match_kwargs["nw_src"] = rng.randint(0, 3)
                if rng.random() < 0.5:
                    match_kwargs["nw_dst"] = rng.randint(0, 3)
                actions = output(
                    rng.randint(1, 3)
                ) if rng.random() < 0.8 else drop()
                rules.append(
                    Rule(
                        priority=priority,
                        match=Match.build(**match_kwargs),
                        actions=actions,
                    )
                )
            probed = Rule(
                priority=10,
                match=Match.build(nw_src=rng.randint(0, 3)),
                actions=output(rng.randint(1, 3)),
            )
            results = []
            for encoding in DistinguishEncoding:
                compiler = ConstraintCompiler(encoding=encoding)
                compiler.assert_matches(probed.match)
                compiler.assert_distinguish(probed, rules)
                results.append(solve(compiler.cnf).satisfiable)
            assert results[0] == results[1]


class TestDecodeAssignment:
    def test_unassigned_bits_default_false(self):
        compiler = ConstraintCompiler()
        values = compiler.decode_assignment({})
        assert all(v == 0 for v in values.values())

    def test_bit_order_msb_first(self):
        compiler = ConstraintCompiler()
        # Set the MSB of in_port (bit 0 of the header = var 1).
        values = compiler.decode_assignment({1: True})
        assert values[FieldName.IN_PORT] == 1 << 15
