"""OpenFlow control channels.

A :class:`ControlChannel` carries control messages between a
controller-side endpoint and a switch-side endpoint with a configurable
latency.  Endpoints are callables; Monocle interposes by owning the
switch's channel and exposing a controller-facing endpoint of its own
(the paper's proxy design, §2/§7).
"""

from __future__ import annotations

from typing import Callable

from repro.network.conditioning import ChannelConditioner
from repro.openflow.messages import Message
from repro.sim.kernel import Simulator

#: Default one-way control-channel latency (TCP over management net).
DEFAULT_CONTROL_LATENCY = 0.001


class ControlChannel:
    """A bidirectional, ordered message pipe with latency.

    An optional :class:`~repro.network.conditioning.ChannelConditioner`
    perturbs delivery (loss/delay/jitter/duplication/reorder) with
    seed-deterministic draws.  While the conditioner is idle the send
    path is byte-identical to an unconditioned channel — no draws, no
    extra scheduling.

    Attributes:
        down_handler: receives messages travelling controller -> switch.
        up_handler: receives messages travelling switch -> controller.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = DEFAULT_CONTROL_LATENCY,
        conditioner: ChannelConditioner | None = None,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.conditioner = conditioner
        self.down_handler: Callable[[Message], None] | None = None
        self.up_handler: Callable[[Message], None] | None = None
        self.messages_down = 0
        self.messages_up = 0

    def send_down(self, msg: Message) -> None:
        """Send toward the switch."""
        self.messages_down += 1
        handler = self.down_handler
        if handler is not None:
            self._deliver(msg, handler, "down")

    def send_up(self, msg: Message) -> None:
        """Send toward the controller."""
        self.messages_up += 1
        handler = self.up_handler
        if handler is not None:
            self._deliver(msg, handler, "up")

    def _deliver(
        self,
        msg: Message,
        handler: Callable[[Message], None],
        direction: str,
    ) -> None:
        conditioner = self.conditioner
        if conditioner is None or not conditioner.is_active(direction):
            self.sim.schedule(self.latency, lambda: handler(msg))
            return
        for extra in conditioner.plan(direction):
            self.sim.schedule(
                self.latency + extra, lambda: handler(msg)
            )
