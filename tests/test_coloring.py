"""Tests for the vertex-coloring solvers and the strategy-2 transform."""

import networkx as nx
import pytest

from repro.coloring import (
    GreedyOrder,
    exact_coloring,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
    square_graph,
)
from repro.sim.random import DeterministicRandom


def random_graph(n, p, seed):
    rng = DeterministicRandom(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


class TestGreedy:
    @pytest.mark.parametrize("order", list(GreedyOrder))
    def test_produces_proper_colorings(self, order):
        for seed in range(5):
            graph = random_graph(30, 0.2, seed)
            coloring = greedy_coloring(graph, order)
            assert is_proper_coloring(graph, coloring)

    def test_bipartite_two_colors_dsatur(self):
        graph = nx.complete_bipartite_graph(5, 7)
        coloring = greedy_coloring(graph, GreedyOrder.DSATUR)
        assert num_colors(coloring) == 2

    def test_empty_graph(self):
        assert greedy_coloring(nx.Graph()) == {}

    def test_isolated_nodes_colored(self):
        graph = nx.Graph()
        graph.add_nodes_from([1, 2, 3])
        coloring = greedy_coloring(graph)
        assert set(coloring) == {1, 2, 3}
        assert num_colors(coloring) == 1


class TestExact:
    def test_triangle_needs_three(self):
        graph = nx.complete_graph(3)
        assert num_colors(exact_coloring(graph)) == 3

    def test_clique_needs_n(self):
        graph = nx.complete_graph(6)
        assert num_colors(exact_coloring(graph)) == 6

    def test_even_cycle_two_colors(self):
        graph = nx.cycle_graph(10)
        assert num_colors(exact_coloring(graph)) == 2

    def test_odd_cycle_three_colors(self):
        graph = nx.cycle_graph(11)
        assert num_colors(exact_coloring(graph)) == 3

    def test_petersen_graph_three_colors(self):
        graph = nx.petersen_graph()
        coloring = exact_coloring(graph)
        assert is_proper_coloring(graph, coloring)
        assert num_colors(coloring) == 3

    def test_star_two_colors(self):
        graph = nx.star_graph(20)
        assert num_colors(exact_coloring(graph)) == 2

    def test_exact_never_worse_than_greedy(self):
        for seed in range(8):
            graph = random_graph(18, 0.3, seed + 100)
            exact = num_colors(exact_coloring(graph))
            dsatur = num_colors(greedy_coloring(graph, GreedyOrder.DSATUR))
            assert exact <= dsatur
            assert is_proper_coloring(graph, exact_coloring(graph))

    def test_disconnected_components(self):
        graph = nx.Graph()
        graph.add_edges_from([(1, 2), (2, 3), (1, 3)])  # triangle
        graph.add_edges_from([(10, 11)])  # edge
        coloring = exact_coloring(graph)
        assert is_proper_coloring(graph, coloring)
        assert num_colors(coloring) == 3

    def test_budget_falls_back_to_greedy(self):
        graph = random_graph(25, 0.4, 7)
        coloring = exact_coloring(graph, node_budget=1)
        assert is_proper_coloring(graph, coloring)


class TestSquareGraph:
    def test_star_square_is_clique(self):
        # All leaves share the hub: the square is complete.
        graph = nx.star_graph(5)
        squared = square_graph(graph)
        assert squared.number_of_edges() == 6 * 5 // 2

    def test_path_square(self):
        graph = nx.path_graph(4)  # 0-1-2-3
        squared = square_graph(graph)
        assert squared.has_edge(0, 2)
        assert squared.has_edge(1, 3)
        assert not squared.has_edge(0, 3)

    def test_original_edges_preserved(self):
        graph = nx.cycle_graph(6)
        squared = square_graph(graph)
        for edge in graph.edges:
            assert squared.has_edge(*edge)

    def test_square_coloring_separates_two_hop_neighbors(self):
        graph = nx.random_tree(
            30, seed=3
        ) if hasattr(nx, "random_tree") else nx.path_graph(30)
        squared = square_graph(graph)
        coloring = exact_coloring(squared)
        for node in graph.nodes:
            neighbor_colors = [coloring[n] for n in graph.neighbors(node)]
            # All neighbors of one node must have pairwise distinct colors.
            assert len(neighbor_colors) == len(set(neighbor_colors))


class TestValidate:
    def test_missing_node_not_proper(self):
        graph = nx.path_graph(3)
        assert not is_proper_coloring(graph, {0: 0, 1: 1})

    def test_monochromatic_edge_not_proper(self):
        graph = nx.path_graph(2)
        assert not is_proper_coloring(graph, {0: 1, 1: 1})

    def test_num_colors_empty(self):
        assert num_colors({}) == 0
