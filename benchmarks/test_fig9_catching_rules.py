"""Figure 9 (+ §8.3.2): number of reserved values / catching rules.

Paper setup: for every Internet Topology Zoo graph (261) and Rocketfuel
map (10), compute the number of reserved header-field values needed
(a) without coloring (= number of switches), (b) with strategy-1
coloring (plain vertex coloring, exact/ILP), (c) with strategy-2
coloring (squared-graph coloring; greedy for the huge Rocketfuel maps,
as in the paper).

Paper result: strategy 1 needs <= 9 values on all zoo topologies (up to
754 switches) and <= 8 on Rocketfuel (up to 11800); strategy 2 tracks
the max node degree — up to 59 on the zoo and 258 on Rocketfuel — so
the single-reserved-field scheme is the practical one.
"""

from repro.analysis import Cdf, format_table
from repro.coloring import (
    GreedyOrder,
    exact_coloring,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
    square_graph,
)
from repro.topology.corpus import (
    rocketfuel_like_corpus,
    topology_zoo_like_corpus,
)

from .conftest import print_header

#: Exact coloring is used below this size (as the paper's ILP was);
#: greedy DSATUR above (as the paper did for Rocketfuel strategy 2).
EXACT_NODE_LIMIT = 800
EXACT_SQUARE_NODE_LIMIT = 120


def colors_for(graph, strategy):
    target = graph if strategy == 1 else square_graph(graph)
    limit = EXACT_NODE_LIMIT if strategy == 1 else EXACT_SQUARE_NODE_LIMIT
    if target.number_of_nodes() <= limit:
        coloring = exact_coloring(target, node_budget=300_000)
    else:
        coloring = greedy_coloring(target, GreedyOrder.DSATUR)
    assert is_proper_coloring(target, coloring)
    return num_colors(coloring)


def cdf_row(values, thresholds):
    cdf = Cdf(values)
    return [f"{100 * cdf.fraction_at_or_below(t):.0f}%" for t in thresholds]


def test_figure9_catching_rules(benchmark):
    zoo = topology_zoo_like_corpus()
    rocketfuel = rocketfuel_like_corpus()

    zoo_none = [g.number_of_nodes() for g in zoo]
    zoo_s1 = [colors_for(g, 1) for g in zoo]
    zoo_s2 = [colors_for(g, 2) for g in zoo]

    thresholds = [2, 3, 4, 5, 9, 20, 60, 1000]
    rows = [
        ["no coloring"] + cdf_row(zoo_none, thresholds),
        ["strategy 1 (coloring)"] + cdf_row(zoo_s1, thresholds),
        ["strategy 2 (coloring)"] + cdf_row(zoo_s2, thresholds),
    ]
    print_header(
        "Figure 9 — topologies needing <= K reserved values "
        f"({len(zoo)} zoo-like graphs)"
    )
    print(format_table(["scheme \\ K"] + [str(t) for t in thresholds], rows))
    print(
        f"\nstrategy 1 max: {max(zoo_s1)} values "
        f"(paper: <= 9 for up to 754 switches)\n"
        f"strategy 2 max: {max(zoo_s2)} values (paper: up to 59)\n"
        f"no coloring max: {max(zoo_none)} values"
    )

    # Rocketfuel-scale check (strategy 1 exact is feasible <= limit;
    # greedy otherwise, like the paper's out-of-memory ILP fallback).
    rf_s1 = [colors_for(g, 1) for g in rocketfuel]
    rf_s2 = [colors_for(g, 2) for g in rocketfuel]
    rf_rows = [
        [g.graph["name"], g.number_of_nodes(), s1, s2]
        for g, s1, s2 in zip(rocketfuel, rf_s1, rf_s2)
    ]
    print("\nRocketfuel-like maps:")
    print(
        format_table(
            ["graph", "switches", "strategy 1", "strategy 2"], rf_rows
        )
    )
    print(
        f"\nstrategy 1 max: {max(rf_s1)} (paper: <= 8); "
        f"strategy 2 max: {max(rf_s2)} (paper: up to 258)"
    )

    # Shape assertions.
    assert max(zoo_s1) <= 9  # the paper's headline number
    assert max(rf_s1) <= 9
    assert max(zoo_s2) > max(zoo_s1)  # strategy 2 needs many more ids
    assert max(rf_s2) > 3 * max(rf_s1)
    # Coloring always beats one-id-per-switch on non-trivial graphs.
    assert sum(zoo_s1) < sum(zoo_none)

    benchmark.pedantic(
        lambda: [colors_for(g, 1) for g in zoo[:30]], rounds=1, iterations=1
    )
