"""Abstract probe header -> raw packet (paper §5.2).

The SAT stage produces an assignment over abstract header bits; nothing
forces that assignment to be a *craftable* packet.  Two normalization
steps from the paper run before serialization:

1. **Limited domains.**  Fields like ``dl_type`` and ``nw_proto`` only
   admit a handful of wire-valid values.  If the SAT solution picked an
   invalid value, it is replaced with a *spare* valid value — one whose
   substitution provably does not change ``Matches(probe, R)`` for any
   rule ``R`` the caller supplies (the §5.2 substitution lemma).  Rather
   than assuming rules are exact-or-wildcard on these fields, we check
   the lemma's conclusion directly against every rule constraint.

2. **Conditionally-excluded fields.**  Fields whose parent field takes a
   value that excludes them (e.g. ``tp_src`` when ``nw_proto`` is not
   TCP/UDP/ICMP) are zeroed; the §5.2 elimination lemma guarantees this
   cannot change any well-formed rule's match result.

After normalization, :func:`craft_packet` assembles real bytes:
Ethernet (+VLAN) and then IPv4/TCP/UDP/ICMP or ARP.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.openflow.fields import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    HEADER,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    VLAN_NONE,
    Field,
    FieldName,
)
from repro.openflow.match import FieldMatch, Match
from repro.packets import arp, ethernet, ipv4, transport


class CraftError(ValueError):
    """Raised when an abstract header cannot become a valid packet."""


def _substitution_safe(
    candidate: int, original: int, constraints: Iterable[FieldMatch]
) -> bool:
    """Does swapping original->candidate preserve every field constraint?"""
    for fm in constraints:
        if fm.matches(candidate) != fm.matches(original):
            return False
    return True


def _field_constraints(
    matches: Iterable[Match], name: FieldName
) -> list[FieldMatch]:
    """Collect the non-wildcard constraints on ``name`` across matches."""
    out = []
    for match in matches:
        fm = match.constraint(name)
        if not fm.is_wildcard():
            out.append(fm)
    return out


def _fix_limited_domain(
    field: Field,
    value: int,
    constraints: list[FieldMatch],
) -> int:
    """Return a wire-valid value for the field, preserving all matches.

    Implements the spare-value substitution of §5.2.  If the current
    value is already valid it is kept; otherwise each valid value is
    tried in order and the first one that provably preserves every
    constraint is chosen.
    """
    assert field.valid_values is not None
    if value in field.valid_values:
        return value
    for candidate in field.valid_values:
        if _substitution_safe(candidate, value, constraints):
            return candidate
    raise CraftError(
        f"no valid substitute for {field.name}={value:#x}; "
        f"domain {field.valid_values} is fully pinned by rules"
    )


def _is_excluded(values: Mapping[FieldName, int], field: Field) -> bool:
    """Is the field conditionally excluded given the parent's value?

    Walks parent links recursively: a field is excluded if its immediate
    parent has an excluding value, or the parent itself is excluded.
    """
    if field.parent is None:
        return False
    parent_field = HEADER.field(field.parent)
    if _is_excluded(values, parent_field):
        return True
    assert field.parent_values is not None
    return values.get(field.parent, 0) not in field.parent_values


#: OpenFlow 1.0 maps ICMP type/code onto tp_src/tp_dst; only the low
#: byte of each exists on the wire.
_ICMP_TP_MASK = 0xFF


def wire_visible_items(
    values: Mapping[FieldName, int]
) -> tuple[tuple[FieldName, int], ...]:
    """The header items a craft -> parse roundtrip preserves, sorted.

    Conditionally-excluded fields (``nw_proto`` on an ARP packet,
    ``tp_src`` without a transport protocol, ...) never appear on the
    wire, so an observer — Monocle catching its own probe — cannot see
    them; comparing observations must ignore them.  For ICMP packets
    the transport fields are masked to the byte the wire can carry
    (type/code).  Missing fields are treated as 0, mirroring
    :func:`normalize_abstract_header`.
    """
    icmp = values.get(FieldName.NW_PROTO, 0) == IPPROTO_ICMP
    items = []
    for field in HEADER:
        if _is_excluded(values, field):
            continue
        value = values.get(field.name, 0)
        if icmp and field.name in (FieldName.TP_SRC, FieldName.TP_DST):
            value &= _ICMP_TP_MASK
        items.append((field.name, value))
    return tuple(sorted(items))


def normalize_abstract_header(
    values: Mapping[FieldName, int],
    rule_matches: Iterable[Match] = (),
) -> dict[FieldName, int]:
    """Apply the §5.2 normalization steps to a raw SAT solution.

    Args:
        values: abstract header values (missing fields treated as 0).
        rule_matches: every match whose result must be preserved — the
            full flow table plus the catching rule.

    Returns:
        A craftable header: limited-domain fields hold wire-valid values
        and conditionally-excluded fields are zeroed.

    Raises:
        CraftError: when a limited-domain field cannot be fixed.
    """
    matches = list(rule_matches)
    normalized = {field.name: values.get(field.name, 0) for field in HEADER}

    # Step 1: limited-domain substitution, parents before children so the
    # exclusion decisions below see final parent values.
    for field in HEADER:
        if field.valid_values is None:
            continue
        if _is_excluded(normalized, field):
            continue  # handled by step 2
        constraints = _field_constraints(matches, field.name)
        normalized[field.name] = _fix_limited_domain(
            field, normalized[field.name], constraints
        )

    # Step 2: zero conditionally-excluded fields (elimination lemma).
    for field in HEADER:
        if field.parent is not None and _is_excluded(normalized, field):
            normalized[field.name] = 0

    # Step 3: ICMP narrows tp_src/tp_dst to one wire byte (type/code).
    # A SAT solution using the upper bits would not survive the craft ->
    # parse roundtrip, so substitute a representable value that
    # provably preserves every rule's match result — the same spare-
    # value argument as step 1, over the domain 0..255.
    if normalized[FieldName.NW_PROTO] == IPPROTO_ICMP and not _is_excluded(
        normalized, HEADER.field(FieldName.TP_SRC)
    ):
        for name in (FieldName.TP_SRC, FieldName.TP_DST):
            value = normalized[name]
            if value <= _ICMP_TP_MASK:
                continue
            constraints = _field_constraints(matches, name)
            for candidate in range(_ICMP_TP_MASK + 1):
                if _substitution_safe(candidate, value, constraints):
                    normalized[name] = candidate
                    break
            else:
                raise CraftError(
                    f"no ICMP-representable substitute for "
                    f"{name.value}={value:#x}"
                )

    return normalized


def craft_packet(
    values: Mapping[FieldName, int],
    payload: bytes = b"",
) -> bytes:
    """Serialize a normalized abstract header into real packet bytes.

    The ``in_port`` field is injection metadata, not packet content, and
    is ignored here.

    Raises:
        CraftError: if ``dl_type`` (or ``nw_proto`` for IPv4) holds a
            value this library cannot serialize; run
            :func:`normalize_abstract_header` first.
    """
    dl_type = values.get(FieldName.DL_TYPE, 0)
    eth_header = ethernet.EthernetHeader(
        dst=values.get(FieldName.DL_DST, 0),
        src=values.get(FieldName.DL_SRC, 0),
        ethertype=dl_type,
        vlan=values.get(FieldName.DL_VLAN, VLAN_NONE),
        vlan_pcp=values.get(FieldName.DL_VLAN_PCP, 0),
    )

    if dl_type == ETHERTYPE_IPV4:
        inner = _craft_ipv4(values, payload)
    elif dl_type == ETHERTYPE_ARP:
        inner = arp.encode_arp(
            arp.ArpPacket(
                opcode=arp.OP_REQUEST,
                sender_mac=values.get(FieldName.DL_SRC, 0),
                sender_ip=values.get(FieldName.NW_SRC, 0),
                target_mac=0,
                target_ip=values.get(FieldName.NW_DST, 0),
            )
        ) + payload
    else:
        raise CraftError(f"cannot craft dl_type={dl_type:#06x}")
    return ethernet.encode_ethernet(eth_header, inner)


def _craft_ipv4(values: Mapping[FieldName, int], payload: bytes) -> bytes:
    nw_src = values.get(FieldName.NW_SRC, 0)
    nw_dst = values.get(FieldName.NW_DST, 0)
    nw_proto = values.get(FieldName.NW_PROTO, 0)
    tp_src = values.get(FieldName.TP_SRC, 0)
    tp_dst = values.get(FieldName.TP_DST, 0)

    if nw_proto == IPPROTO_TCP:
        inner = transport.encode_tcp(tp_src, tp_dst, payload, nw_src, nw_dst)
    elif nw_proto == IPPROTO_UDP:
        inner = transport.encode_udp(tp_src, tp_dst, payload, nw_src, nw_dst)
    elif nw_proto == IPPROTO_ICMP:
        # OpenFlow 1.0 maps ICMP type/code onto tp_src/tp_dst.
        inner = transport.encode_icmp(tp_src & 0xFF, tp_dst & 0xFF, payload)
    else:
        raise CraftError(f"cannot craft nw_proto={nw_proto}")

    ip_header = ipv4.Ipv4Header(
        src=nw_src,
        dst=nw_dst,
        proto=nw_proto,
        tos=values.get(FieldName.NW_TOS, 0),
    )
    return ipv4.encode_ipv4(ip_header, inner)
