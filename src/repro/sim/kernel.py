"""The discrete-event simulation kernel.

A :class:`Simulator` owns a clock and an event queue.  Components schedule
callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.at` (absolute time); :meth:`Simulator.run` dispatches
events in time order until the queue drains or a time/event limit is hit.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [1.5]
    """

    def __init__(self) -> None:
        self.clock = Clock()
        self._queue = EventQueue()
        self._dispatched = 0
        self._running = False
        #: Called with the event time after every dispatched event.
        #: Observability (periodic metric snapshots) rides this hook
        #: instead of self-rescheduling timer events, so an otherwise
        #: idle deployment's queue can still drain.
        self._dispatch_hook: Callable[[float], None] | None = None

    def set_dispatch_hook(
        self, hook: Callable[[float], None] | None
    ) -> None:
        """Install (or clear) the post-dispatch hook.

        The hook must be passive: it runs outside the event queue and
        must not schedule, cancel, or otherwise perturb simulation
        state — it exists so observers can pace themselves off the
        advancing clock without keeping the queue alive.
        """
        self._dispatch_hook = hook

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.clock.now

    @property
    def events_dispatched(self) -> int:
        """Number of events dispatched so far (skips cancelled events)."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._queue)

    def next_event_time(self) -> float | None:
        """Time of the earliest pending event (None when idle).

        A public peek for conservative-time coordination: a sharded
        fleet coordinator uses it to fast-forward barrier windows no
        shard has work in, instead of lock-stepping through empty
        quanta.
        """
        return self._queue.peek_time()

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self._queue.push(self.now + delay, action)

    def at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.now}, time={time}"
            )
        return self._queue.push(time, action)

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Dispatch events in time order.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is left at ``until``.  ``None`` runs to
                queue exhaustion.
            max_events: safety valve against runaway simulations.
        """
        if self._running:
            raise RuntimeError("Simulator.run() is not reentrant")
        self._running = True
        try:
            dispatched_this_run = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if (
                    max_events is not None
                    and dispatched_this_run >= max_events
                ):
                    break
                event = self._queue.pop()
                assert event is not None  # peek said there was one
                self.clock.advance(event.time)
                event.action()
                self._dispatched += 1
                dispatched_this_run += 1
                if self._dispatch_hook is not None:
                    self._dispatch_hook(event.time)
            if until is not None and until > self.now:
                self.clock.advance(until)
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: int | None = None) -> None:
        """Run for ``duration`` seconds of simulated time from now."""
        self.run(until=self.now + duration, max_events=max_events)
