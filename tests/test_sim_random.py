"""Tests for the deterministic randomness wrapper."""

from repro.sim.random import DeterministicRandom


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRandom(42)
        b = DeterministicRandom(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRandom(1)
        b = DeterministicRandom(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRandom(7).fork(3)
        b = DeterministicRandom(7).fork(3)
        assert a.random() == b.random()

    def test_fork_streams_are_independent(self):
        base = DeterministicRandom(7)
        fork = base.fork(1)
        before = fork.random()
        base.random()  # consuming the base must not affect the fork
        fork2 = DeterministicRandom(7).fork(1)
        fork2.random()
        assert before == DeterministicRandom(7).fork(1).random()


class TestHelpers:
    def test_uniform_bounds(self):
        rng = DeterministicRandom(0)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_getrandbits_width(self):
        rng = DeterministicRandom(0)
        for bits in (1, 8, 16, 48):
            for _ in range(20):
                assert 0 <= rng.getrandbits(bits) < (1 << bits)

    def test_getrandbits_zero(self):
        assert DeterministicRandom(0).getrandbits(0) == 0

    def test_choose_returns_member(self):
        rng = DeterministicRandom(0)
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choose(items) in items

    def test_sample_distinct(self):
        rng = DeterministicRandom(0)
        picked = rng.sample(list(range(100)), 10)
        assert len(set(picked)) == 10

    def test_jittered_non_negative_and_in_band(self):
        rng = DeterministicRandom(0)
        for _ in range(100):
            value = rng.jittered(1.0, fraction=0.5)
            assert 0.5 <= value <= 1.5

    def test_jittered_floors_at_zero(self):
        rng = DeterministicRandom(0)
        for _ in range(50):
            assert rng.jittered(0.001, fraction=5.0) >= 0.0

    def test_shuffle_permutes(self):
        rng = DeterministicRandom(3)
        items = list(range(30))
        rng.shuffle(items)
        assert sorted(items) == list(range(30))

    def test_expovariate_positive(self):
        rng = DeterministicRandom(0)
        for _ in range(50):
            assert rng.expovariate(100.0) >= 0.0
