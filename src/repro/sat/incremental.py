"""Persistent SAT context: assumptions, clause groups, retraction.

The probe-generation hot path re-solves closely related formulas every
time a switch's flow table churns.  :class:`IncrementalSolver` wraps the
CDCL core (:class:`~repro.sat.solver.SatSolver`) with the three
facilities that make those solves share work:

* **assumption-based solving** — per-call literals that vanish after the
  call, leaving learned clauses behind (the core supports this natively;
  the wrapper only bookkeeps);
* **clause groups** — clauses tagged with a fresh *selector* variable
  ``s`` are stored as ``(c | -s)`` and only bind while ``s`` is assumed,
  so a caller activates a group by passing its selector as an
  assumption;
* **retraction** — retiring a group permanently asserts ``-s``, which
  satisfies (and thereby disables) every clause of the group, including
  any lemmas learned from them (they all carry ``-s``).  Selector
  variables are never reused.

Retired groups leave dead-but-satisfied clauses in the database; when
their number exceeds both an absolute floor and a multiple of the live
clause count, the wrapper rebuilds the core solver from the live clause
store (**compaction**), dropping dead clauses.  Learned lemmas that
mention no retired selector are implied by the surviving formula and
are carried across the rebuild, so compaction no longer costs the
solver its accumulated warmth.

The wrapper is formula-agnostic; probe-specific encoding lives in
:mod:`repro.core.constraints`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.sat.cnf import CNF, Lit
from repro.sat.solver import SatResult, SatSolver


@dataclass
class IncrementalStats:
    """Cumulative counters over the context's lifetime."""

    solves: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    groups_created: int = 0
    groups_retired: int = 0
    compactions: int = 0
    #: Lemmas carried across compactions (warmth retention).
    lemmas_retained: int = 0
    #: Solves answered from the memoized (formula, assumptions) result.
    model_cache_hits: int = 0


class IncrementalSolver:
    """A reusable SAT solver with clause groups and retraction.

    Args:
        num_vars: variables pre-allocated at construction (callers use
            ``1..num_vars`` directly; :meth:`new_var` allocates above).
        compaction_floor: never compact below this many dead clauses.
        compaction_ratio: compact when dead clauses exceed this multiple
            of the live clause count.
    """

    def __init__(
        self,
        num_vars: int = 0,
        compaction_floor: int = 2000,
        compaction_ratio: float = 1.0,
    ) -> None:
        self._num_vars = num_vars
        self.compaction_floor = compaction_floor
        self.compaction_ratio = compaction_ratio
        self._solver = SatSolver(CNF(num_vars), check_models=False)
        #: Permanent clauses (group None) for compaction rebuilds.
        self._permanent: list[list[Lit]] = []
        #: Live groups: selector -> clauses as stored (selector included).
        self._groups: dict[int, list[list[Lit]]] = {}
        #: Variables allocated on behalf of a live group (Tseitin
        #: auxiliaries of its transient clauses).
        self._group_vars: dict[int, list[int]] = {}
        #: Recycled variables.  A retired group's clauses — and every
        #: lemma learned from them, which necessarily carries the
        #: group's negated selector — are permanently satisfied, so the
        #: group's auxiliary variables end up mentioned only by
        #: satisfied clauses: they are unconstrained and safe to hand
        #: out again.  Recycling keeps the variable space (and with it
        #: per-solve assignment/propagation cost) bounded by the *live*
        #: formula instead of growing with every probe ever solved.
        self._free_vars: list[int] = []
        #: Selectors of retired groups.  Every lemma learned from a
        #: group's clauses carries the group's negated selector, so this
        #: set is exactly what compaction needs to tell transferable
        #: lemmas from dead ones.
        self._retired: set[int] = set()
        #: Lemmas carried over by earlier compactions (they live in the
        #: core solver as plain clauses, so they must be re-filtered and
        #: re-added explicitly on the next rebuild).
        self._kept_lemmas: list[list[Lit]] = []
        self._dead_clauses = 0
        #: Memoized last solve: ((formula generation, assumptions),
        #: result).  Valid because a solve result only depends on the
        #: clause database and the assumptions — heuristic state
        #: (phases, activities, lemmas) never changes satisfiability.
        #: The persistent probe groups of the probe-gen layer make
        #: "identical formula, identical assumptions" the common case
        #: under churn that cancels out (remove + re-add).
        self._model_cache: (
            "tuple[tuple[int, tuple[Lit, ...]], SatResult] | None"
        ) = None
        self.stats = IncrementalStats()

    #: Upper bound on lemmas surviving a compaction; beyond this the
    #: oldest are dropped (a safety valve, not a tuning knob).
    MAX_KEPT_LEMMAS = 20_000

    # ----- variables ----------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Live clauses (permanent + grouped), excluding learned lemmas."""
        return len(self._permanent) + sum(
            len(clauses) for clauses in self._groups.values()
        )

    @property
    def num_dead_clauses(self) -> int:
        """Clauses still in the core solver but disabled by retirement."""
        return self._dead_clauses

    def new_var(self, group: int | None = None) -> int:
        """Allocate an unconstrained variable.

        With ``group`` set, the variable is tied to that clause group
        and returns to the recycling pool when the group is retired.
        Recycled variables are preferred over growing the space.
        """
        if self._free_vars:
            var = self._free_vars.pop()
        else:
            self._num_vars += 1
            self._solver.ensure_num_vars(self._num_vars)
            var = self._num_vars
        if group is not None:
            self._group_vars[group].append(var)
        return var

    def new_vars(self, count: int, group: int | None = None) -> list[int]:
        """Allocate ``count`` unconstrained variables."""
        return [self.new_var(group) for _ in range(count)]

    # ----- clauses and groups -------------------------------------------

    def add_clause(
        self, literals: Iterable[Lit], group: int | None = None
    ) -> None:
        """Add a clause, optionally tagged with a group selector.

        Grouped clauses only bind while the selector is passed as an
        assumption to :meth:`solve`; permanent clauses always bind.
        """
        lits = list(literals)
        if group is None:
            self._permanent.append(lits)
            self._solver.add_clause(lits)
            return
        clauses = self._groups.get(group)
        if clauses is None:
            raise ValueError(f"unknown or retired group {group}")
        stored = lits + [-group]
        clauses.append(stored)
        self._solver.add_clause(stored)

    def add_unit(self, lit: Lit, group: int | None = None) -> None:
        """Add a unit clause (grouped units become binary selectors)."""
        self.add_clause((lit,), group=group)

    def new_group(self) -> int:
        """Create a clause group; returns its selector variable.

        Activate the group by passing the selector as an assumption.
        Selectors never come from the recycling pool: retirement pins
        them false forever, so they are constrained, not free.
        """
        self._num_vars += 1
        self._solver.ensure_num_vars(self._num_vars)
        selector = self._num_vars
        self._groups[selector] = []
        self._group_vars[selector] = []
        self.stats.groups_created += 1
        return selector

    def retire_group(self, selector: int) -> None:
        """Permanently retract a group's clauses.

        Asserts ``-selector`` so every clause of the group (and every
        lemma learned from them) is satisfied and can never bind again;
        the group's auxiliary variables join the recycling pool.
        """
        clauses = self._groups.pop(selector, None)
        if clauses is None:
            return  # already retired; idempotent
        self._solver.add_clause((-selector,))
        self._retired.add(selector)
        self._free_vars.extend(self._group_vars.pop(selector, ()))
        self._dead_clauses += len(clauses)
        self.stats.groups_retired += 1
        self._maybe_compact()

    # ----- solving --------------------------------------------------------

    def group_size(self, selector: int) -> int:
        """Variables allocated on behalf of a live group (0 if retired)."""
        return len(self._group_vars.get(selector, ()))

    def suggest_phase(self, var: int, value: bool) -> None:
        """Override the saved phase of ``var`` (branching heuristic).

        Callers holding many live-but-inactive groups use this to point
        the default branch of a selector at "deactivated" after a solve
        assumed it true, so later solves of *other* groups do not waste
        conflicts switching it back off.
        """
        self._solver.phase[var] = value

    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        max_conflicts: int | None = None,
    ) -> SatResult:
        """Solve under per-call assumptions (group selectors included).

        When neither the formula nor the assumptions changed since the
        last decided call, the memoized result is returned without
        touching the core solver (its counters report zero new work).
        """
        key = (self._solver.generation, tuple(assumptions))
        cached = self._model_cache
        if cached is not None and cached[0] == key:
            self.stats.solves += 1
            self.stats.model_cache_hits += 1
            return cached[1]
        result = self._solver.solve(
            assumptions=assumptions, max_conflicts=max_conflicts
        )
        if result.satisfiable is not None:
            # Key on the post-solve generation: the call itself may
            # have flushed pending units but learned lemmas never
            # change satisfiability.
            self._model_cache = (
                (self._solver.generation, tuple(assumptions)),
                SatResult(
                    satisfiable=result.satisfiable,
                    assignment=result.assignment,
                ),
            )
        self.stats.solves += 1
        self.stats.conflicts += result.conflicts
        self.stats.propagations += result.propagations
        self.stats.learned_clauses += result.learned_clauses
        return result

    # ----- compaction -----------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._dead_clauses < self.compaction_floor:
            return
        if self._dead_clauses < self.compaction_ratio * max(
            1, self.num_clauses
        ):
            return
        self.compact()

    def compact(self) -> None:
        """Rebuild the core solver from live clauses only.

        Drops dead (retired) clauses; variable numbering is preserved so
        cached literals stay valid.  Learned lemmas that mention no
        retired selector are *kept*: by the selector invariant (every
        lemma derived from a group's clauses carries the group's negated
        selector) such lemmas are resolvents of permanent and live-group
        clauses only, hence still implied — re-adding them preserves the
        solver's warmth through the rebuild.  Lemmas that do mention a
        retired selector are permanently satisfied and dropped (this is
        also what keeps recycled variables out: a retired group's
        auxiliaries only ever appear alongside its selector).
        """
        keep: list[list[Lit]] = []
        for lemma in self._kept_lemmas + self._solver.learned_clauses():
            if any(abs(lit) in self._retired for lit in lemma):
                continue
            keep.append(list(lemma))
        if len(keep) > self.MAX_KEPT_LEMMAS:
            keep = keep[-self.MAX_KEPT_LEMMAS :]
        solver = SatSolver(CNF(self._num_vars), check_models=False)
        for clause in self._permanent:
            solver.add_clause(clause)
        for clauses in self._groups.values():
            for clause in clauses:
                solver.add_clause(clause)
        for lemma in keep:
            solver.add_clause(lemma)
        # The rebuilt core restarts its generation counter near zero; a
        # later collision with a pre-compaction generation would let
        # the memoized model outlive clauses added after it.  Carry the
        # old counter forward and drop the memo outright.
        solver.generation = self._solver.generation + 1
        self._model_cache = None
        self._kept_lemmas = keep
        self._solver = solver
        self._dead_clauses = 0
        self.stats.compactions += 1
        self.stats.lemmas_retained += len(keep)

    def lemma_count(self) -> int:
        """Learned lemmas currently held (a solver-warmth proxy).

        Counts the core solver's live learned clauses plus lemmas
        carried across earlier compactions (those were re-added to the
        core as plain clauses, so the two sets are disjoint).  The
        fleet's re-merge machinery uses this to decide which of two
        converged contexts' solvers to keep.
        """
        return len(self._solver.learned_clauses()) + len(self._kept_lemmas)

    def health(self) -> dict[str, int]:
        """Point-in-time solver health for observability gauges.

        JSON-ready snapshot of the quantities that drive compaction
        and re-merge decisions; cheap enough to sample per metrics
        snapshot.
        """
        return {
            "num_vars": self._num_vars,
            "num_clauses": self.num_clauses,
            "dead_clauses": self._dead_clauses,
            "lemma_count": self.lemma_count(),
        }

    def clone(self) -> "IncrementalSolver":
        """An independent copy: same formula, groups, lemmas, heuristics.

        The substrate of copy-on-churn context forking: a forked
        per-switch context starts from the shared solver's exact state
        (so its next solves behave as if it had been independent all
        along) and diverges from there.
        """
        dup = IncrementalSolver.__new__(IncrementalSolver)
        dup._num_vars = self._num_vars
        dup.compaction_floor = self.compaction_floor
        dup.compaction_ratio = self.compaction_ratio
        dup._solver = self._solver.clone()
        dup._permanent = [list(clause) for clause in self._permanent]
        dup._groups = {
            selector: [list(clause) for clause in clauses]
            for selector, clauses in self._groups.items()
        }
        dup._group_vars = {
            selector: list(group_vars)
            for selector, group_vars in self._group_vars.items()
        }
        dup._free_vars = list(self._free_vars)
        dup._retired = set(self._retired)
        dup._kept_lemmas = [list(clause) for clause in self._kept_lemmas]
        dup._dead_clauses = self._dead_clauses
        dup._model_cache = self._model_cache
        dup.stats = replace(self.stats)
        return dup

    def __repr__(self) -> str:
        return (
            f"IncrementalSolver(vars={self._num_vars}, "
            f"live={self.num_clauses}, dead={self._dead_clauses}, "
            f"groups={len(self._groups)})"
        )
