"""TCP / UDP / ICMP header encode and decode.

Only the fields OpenFlow 1.0 can match on need to survive the round trip:
``tp_src`` and ``tp_dst`` (mapped to ICMP type/code for ICMP, per the
spec).  Checksums are computed with the IPv4 pseudo-header where the
protocol requires it.
"""

from __future__ import annotations

import struct

from repro.packets.checksum import internet_checksum

TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8
ICMP_HEADER_LEN = 8


def _pseudo_header(src_ip: int, dst_ip: int, proto: int, length: int) -> bytes:
    return (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + struct.pack("!BBH", 0, proto, length)
    )


def encode_tcp(
    src_port: int, dst_port: int, payload: bytes, src_ip: int, dst_ip: int
) -> bytes:
    """Serialize a minimal TCP segment (no options, SYN-less)."""
    header = struct.pack(
        "!HHIIBBHHH",
        src_port,
        dst_port,
        0,  # seq
        0,  # ack
        (TCP_HEADER_LEN // 4) << 4,  # data offset
        0x10,  # ACK flag, keeps middleboxes calm
        0xFFFF,  # window
        0,  # checksum placeholder
        0,  # urgent pointer
    )
    segment = header + payload
    pseudo = _pseudo_header(src_ip, dst_ip, 6, len(segment))
    checksum = internet_checksum(pseudo + segment)
    return segment[:16] + struct.pack("!H", checksum) + segment[18:]


def decode_tcp(data: bytes) -> tuple[int, int, bytes]:
    """Parse a TCP segment; returns (src_port, dst_port, payload)."""
    if len(data) < TCP_HEADER_LEN:
        raise ValueError(f"too short for TCP: {len(data)} bytes")
    src_port, dst_port = struct.unpack("!HH", data[0:4])
    data_offset = (data[12] >> 4) * 4
    if data_offset < TCP_HEADER_LEN or len(data) < data_offset:
        raise ValueError(f"bad TCP data offset: {data_offset}")
    return src_port, dst_port, data[data_offset:]


def encode_udp(
    src_port: int, dst_port: int, payload: bytes, src_ip: int, dst_ip: int
) -> bytes:
    """Serialize a UDP datagram with checksum."""
    length = UDP_HEADER_LEN + len(payload)
    header = struct.pack("!HHHH", src_port, dst_port, length, 0)
    datagram = header + payload
    pseudo = _pseudo_header(src_ip, dst_ip, 17, length)
    checksum = internet_checksum(pseudo + datagram)
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero checksum means "absent"
    return datagram[:6] + struct.pack("!H", checksum) + datagram[8:]


def decode_udp(data: bytes) -> tuple[int, int, bytes]:
    """Parse a UDP datagram; returns (src_port, dst_port, payload)."""
    if len(data) < UDP_HEADER_LEN:
        raise ValueError(f"too short for UDP: {len(data)} bytes")
    src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[0:8])
    if length < UDP_HEADER_LEN:
        raise ValueError(f"bad UDP length: {length}")
    return src_port, dst_port, data[UDP_HEADER_LEN:length]


def encode_icmp(icmp_type: int, icmp_code: int, payload: bytes) -> bytes:
    """Serialize an ICMP message (echo-style layout)."""
    header = struct.pack("!BBHHH", icmp_type, icmp_code, 0, 0, 0)
    message = header + payload
    checksum = internet_checksum(message)
    return message[:2] + struct.pack("!H", checksum) + message[4:]


def decode_icmp(data: bytes) -> tuple[int, int, bytes]:
    """Parse an ICMP message; returns (type, code, payload)."""
    if len(data) < ICMP_HEADER_LEN:
        raise ValueError(f"too short for ICMP: {len(data)} bytes")
    icmp_type = data[0]
    icmp_code = data[1]
    return icmp_type, icmp_code, data[ICMP_HEADER_LEN:]
