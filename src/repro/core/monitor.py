"""The Monitor proxy: per-switch data-plane monitoring.

One :class:`Monitor` interposes on one switch's control channel (§7).
It maintains the switch's *expected* flow table by observing proxied
FlowMods, and checks data-plane correspondence by injecting probes:

* **steady state** (§3, Figure 4): cycle through all monitorable rules
  at a configured probe rate; each probe is retried within a timeout
  window and a missing/misbehaving rule raises a
  :class:`MonitorAlarm`.
* **dynamic mode** lives in :mod:`repro.core.dynamic` and shares the
  probe bookkeeping implemented here.

A probe is *confirmed* when a caught packet's observation — (egress
port, rewritten header) — is possible under the expected outcome and
impossible under the rule-absent outcome; the generator's Distinguish
constraint guarantees the two sets cannot coincide.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.catching import ReservedValuePool
from repro.core.probegen import (
    ProbeGenContext,
    ProbeGenerator,
    ProbeResult,
    UnmonitorableReason,
)
from repro.core.schedule import ProbeScheduler
from repro.obs import NULL_OBSERVER
from repro.openflow.actions import CONTROLLER_PORT
from repro.openflow.fields import FieldName
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    Message,
    PacketIn,
    next_xid,
)
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable
from repro.packets.craft import wire_visible_items
from repro.packets.parse import ParseError, parse_packet
from repro.packets.payload import ProbeMetadata
from repro.sim.kernel import Event, Simulator

_nonce_counter = itertools.count(1)


@dataclass
class MonitorConfig:
    """Tunables of the monitoring loop.

    Defaults mirror the paper's Figure 4 setup: 500 probes/s, 150 ms
    detection timeout, up to 3 re-sends.
    """

    probe_rate: float = 500.0
    probe_timeout: float = 0.150
    max_retries: int = 3
    #: Re-injection interval for unconfirmed rule updates (dynamic mode).
    update_probe_interval: float = 0.005
    #: Give up confirming an update after this long (transient tolerance).
    update_deadline: float = 10.0
    #: Alarm hysteresis: consecutive probe-timeout *strikes* a rule must
    #: accumulate before a ``missing`` alarm is raised.  1 reproduces
    #: the paper's immediate alarm byte-for-byte; >1 makes the monitor
    #: robust to stochastic probe loss on a degraded control channel
    #: (a lost probe costs one suppressed strike, not a false alarm).
    alarm_confirmations: int = 1
    #: First re-probe gap after a suppressed strike; each further
    #: strike escalates it by ``suspicion_backoff`` up to
    #: ``max_suspicion_interval`` (the same shape as probe-retry
    #: backoff: prompt when suspicion is fresh, polite when the switch
    #: keeps timing out).
    suspicion_reprobe_interval: float = 0.010
    suspicion_backoff: float = 2.0
    max_suspicion_interval: float = 0.050
    #: Per-switch quarantine: this many *distinct* suspect rules inside
    #: ``quarantine_window`` downgrades the switch to best-effort —
    #: ``missing`` alarms are suppressed (counted, traced) until the
    #: switch stays strike-free for ``quarantine_exit`` seconds.
    #: ``misbehaving`` alarms (positive evidence) always fire.
    #: 0 disables quarantine.
    quarantine_threshold: int = 0
    quarantine_window: float = 0.5
    quarantine_exit: float = 1.0
    #: Steady-state probe pipelining: keep up to this many concurrent
    #: probes in flight per switch, each carrying a distinct reserved
    #: header value from the catching plan's slot pool.  Detection
    #: latency on an N-rule table drops from ~N/probe_rate toward
    #: ~N/(probe_window * probe_rate).  1 (the default) reproduces the
    #: paper's one-in-flight cycle byte-for-byte; the effective window
    #: is clamped to the reserved-value pool size (see
    #: ``Monitor.window_clamp``) when the catch field is too narrow.
    probe_window: int = 1
    #: Hold ``churn_first``/``weighted`` promotions of a FlowMod's
    #: rules until the switch confirms (via a Monitor-issued barrier)
    #: that it has applied the FlowMod.  Without this, a *static*
    #: deployment can promote-and-probe inside the switch's
    #: application window and alarm on the old state; dynamic mode is
    #: already safe (updates are probed with transient tolerance) and
    #: ignores the knob.  Off by default: byte-identical to the paper
    #: path, and only as trustworthy as the switch's barrier semantics
    #: (a premature-ack switch shrinks the grace, never corrupts it).
    promotion_grace: bool = False


@dataclass
class MonitorAlarm:
    """Raised (recorded) when a rule misbehaves in the data plane."""

    time: float
    rule: Rule
    kind: str  # "missing" (timeout) or "misbehaving" (wrong observation)
    detail: str = ""


#: An observation: (egress port on the probed switch, header items
#: without in_port).  What Monocle can attribute to a caught probe.
Observation = tuple[int, tuple]


def outcome_observations(
    outcome: RuleOutcome, observable_ports: frozenset[int] | None
) -> frozenset[Observation]:
    """The possible observations of an outcome, restricted to observable
    ports.  ECMP outcomes contribute each alternative.

    Emission headers are projected onto their wire-visible fields: the
    abstract outcome model carries all header fields, but a caught
    probe only shows the fields its packet format encodes (an ARP probe
    has no ``nw_proto``), and the comparison must be apples-to-apples.
    """
    observations = []
    for port, header_items in outcome.emissions:
        if observable_ports is not None and port not in observable_ports:
            continue
        cleaned = tuple(
            (name, value)
            for name, value in wire_visible_items(dict(header_items))
            if name is not FieldName.IN_PORT
        )
        observations.append((port, cleaned))
    return frozenset(observations)


@dataclass
class OutstandingProbe:
    """Book-keeping for one in-flight probe."""

    nonce: int
    result: ProbeResult
    present_obs: frozenset[Observation]
    absent_obs: frozenset[Observation]
    first_injected: float
    retries_left: int
    timeout_event: Event | None = None
    on_confirm: Callable[["OutstandingProbe"], None] | None = None
    on_alarm: Callable[["OutstandingProbe", str], None] | None = None
    #: "present" (steady state / additions) or "absent" (deletions).
    confirm_on: str = "present"
    #: Dynamic-mode probes tolerate observations of the opposite state
    #: (a transient inconsistency, §4.1) instead of alarming on them.
    tolerate_anti: bool = False
    done: bool = False
    #: Trace span id tying this probe's lifecycle events together
    #: (0 when observability is disabled).
    span: int = 0
    #: Reserved header value allocated from the window pool (None when
    #: the window is 1 or the pool overflowed — the canonical header
    #: value is used as-is then); released when the probe retires.
    reserved_value: int | None = None
    #: Launched by the steady cycle's window (counts toward depth).
    steady: bool = False


class Monitor:
    """Monocle's per-switch Monitor proxy.

    Wiring (done by :class:`~repro.core.multiplexer.MonocleSystem` or by
    tests directly):

    * ``forward_down``: deliver a message to the switch.
    * ``forward_up``: deliver a message to the controller.
    * ``inject_probe(packet, in_port)``: arrange for the probe to enter
      the monitored switch on ``in_port`` (via an upstream PacketOut).
    """

    def __init__(
        self,
        sim: Simulator,
        node: Hashable,
        switch_number: int,
        generator: ProbeGenerator,
        config: MonitorConfig | None = None,
        observable_ports: frozenset[int] | None = None,
        forward_down: Callable[[Message], None] | None = None,
        forward_up: Callable[[Message], None] | None = None,
        inject_probe: Callable[[bytes, int], None] | None = None,
        probe_context=None,
        scheduler: ProbeScheduler | None = None,
        obs=None,
        value_pool: ReservedValuePool | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.switch_number = switch_number
        self.generator = generator
        self.config = config if config is not None else MonitorConfig()
        self.observable_ports = observable_ports
        self.forward_down = forward_down
        self.forward_up = forward_up
        self.inject_probe = inject_probe

        #: Probe window: how many steady probes may be in flight at
        #: once.  The requested depth is clamped to the reserved-value
        #: pool (one distinct wire value per in-flight probe); without
        #: a pool only the classic single-probe window is available.
        self.value_pool = value_pool
        requested = max(1, self.config.probe_window)
        available = value_pool.size if value_pool is not None else 1
        self.window = min(requested, available)
        #: Window slots requested but not backed by a reserved value
        #: (metrics-visible degradation of a too-narrow catch field).
        self.window_clamp = requested - self.window
        self.window_peak = 0
        self.reserved_overflows = 0
        self._steady_depth = 0
        #: rule key -> number of outstanding (not done) probes, the
        #: O(1) busy check behind the scheduler's window drain.
        self._inflight_keys: dict[tuple, int] = {}
        #: Promotion grace (static deployments): barrier xid -> rule
        #: keys whose churn promotion is held until the BarrierReply.
        self._grace_pending: dict[int, list[tuple]] = {}
        self.promotions_held = 0
        #: Set by DynamicMonitor: updates are confirmed with transient
        #: tolerance there, so promotion grace must not double-guard.
        self.dynamic_guarded = False

        #: The incremental probe-generation engine: persistent SAT
        #: context, per-rule probe cache with intersection-precise
        #: invalidation and revalidation.  A fleet deployment may
        #: inject a :class:`~repro.core.shared.SharedProbeGenContext`
        #: handle instead, deduping identical tables across switches;
        #: observability validation stays per-switch either way.
        if probe_context is None:
            probe_context = ProbeGenContext(generator)
        probe_context.validate_result = self._check_observability
        self.probe_context = probe_context
        self.alarms: list[MonitorAlarm] = []
        self.outstanding: dict[int, OutstandingProbe] = {}
        #: The probe cycle, owned by an incremental scheduler: the one
        #: full expected-table walk happens here at construction; every
        #: later FlowMod feeds it an O(delta) add/remove instead (the
        #: PR 4 treatment, applied to cycle maintenance).  Policies
        #: other than round-robin promote recently churned rules.
        if scheduler is None:
            scheduler = ProbeScheduler()
        if scheduler.is_infrastructure is None:
            # Default filter: catch/filter rules are the probing plane.
            # A caller-provided filter is honored as-is.
            scheduler.is_infrastructure = self._is_infrastructure
        self.scheduler = scheduler
        scheduler.rebuild(self.expected)
        self._steady_running = False
        # Stats.
        self.probes_sent = 0
        self.probes_confirmed = 0
        self.probes_timed_out = 0
        self.rules_unmonitorable = 0
        self.stale_probes = 0
        # Hysteresis / graceful degradation (all dormant — zero extra
        # events, zero draws — at the default config).
        #: rule key -> consecutive unconfirmed-timeout strikes.
        self.suspicion: dict[tuple, int] = {}
        #: rule key -> last strike time (quarantine scoring).
        self._suspect_times: dict = {}
        self._last_strike = 0.0
        self.quarantined = False
        self.quarantines = 0
        self.alarms_suppressed = 0
        #: Observability: every hot-path publication site guards on
        #: ``obs.enabled``, so the default NULL_OBSERVER costs one
        #: attribute read per site (gated by BENCH_obs.json).
        self.obs = obs if obs is not None else NULL_OBSERVER
        if self.obs.enabled:
            label = repr(node)
            self._h_wait = self.obs.metrics.histogram(
                "monocle_scheduler_wait_seconds", node=label
            )
            self._h_wire = self.obs.metrics.histogram(
                "monocle_probe_wire_seconds", node=label
            )
            scheduler.set_clock(lambda: sim.now)
            probe_context.attach_obs(self.obs, node)

    # ----- expected-table maintenance --------------------------------------

    @property
    def expected(self) -> "FlowTable":
        """Expected (control-plane view) flow table, catch rules included.

        Owned by the probe context so delta updates and probe
        generation see one table; resolved dynamically because a
        shared context swaps tables when it forks (copy-on-churn).
        """
        return self.probe_context.table

    def preinstall(self, rule: Rule) -> None:
        """Record a rule installed out-of-band (catch rules, initial state)."""
        self.probe_context.add_rule(rule)
        self.scheduler.add(rule)

    def observe_flowmod(self, mod: FlowMod) -> list[tuple]:
        """Track a FlowMod the controller sent (steady-state tracking).

        Dynamic-mode interception (queueing + acks) is layered on top by
        :class:`~repro.core.dynamic.DynamicMonitor`.  The probe context
        applies the FlowMod to the expected table and stale-marks only
        cached probes whose rule intersects the rules actually touched;
        the same affected-rule delta maintains the probe cycle — no
        full-table rebuild, ever.

        Returns the rule keys whose scheduler promotion is being held
        for promotion grace (empty on the default path): the proxy
        sends a barrier *behind* the FlowMod and touches the keys only
        when the switch's BarrierReply proves the mod was applied.
        """
        affected = self.probe_context.apply_flowmod(mod)
        defer = (
            self.config.promotion_grace
            and not self.dynamic_guarded
            and not mod.command.is_delete
            and self.forward_down is not None
        )
        self.scheduler.observe_flowmod(mod, affected, touch=not defer)
        if self.obs.enabled:
            self.obs.emit(
                "flowmod.observed",
                node=self.node,
                xid=mod.xid,
                command=mod.command.name,
                priority=mod.priority,
                match=mod.match,
                affected=len(affected),
            )
        if not defer:
            return []
        return [rule.key() for rule in affected]

    # ----- proxy data path ---------------------------------------------------

    def from_controller(self, msg: Message) -> None:
        """Controller -> switch passthrough with FlowMod tracking."""
        grace_keys: list[tuple] = []
        if isinstance(msg, FlowMod):
            grace_keys = self.observe_flowmod(msg)
        if self.forward_down is not None:
            self.forward_down(msg)
        if grace_keys:
            # The barrier rides *behind* the FlowMod on the control
            # channel, so its reply bounds the mod's application time.
            self._send_grace_barrier(grace_keys)

    def _send_grace_barrier(self, keys: list[tuple]) -> None:
        assert self.forward_down is not None
        xid = next_xid()
        self._grace_pending[xid] = keys
        self.promotions_held += 1
        if self.obs.enabled:
            self.obs.emit(
                "promotion.held",
                node=self.node,
                xid=xid,
                keys=len(keys),
            )
        self.forward_down(BarrierRequest(xid=xid))

    def _grace_barrier_done(self, xid: int) -> bool:
        """Consume a BarrierReply for a Monitor-issued grace barrier."""
        keys = self._grace_pending.pop(xid, None)
        if keys is None:
            return False
        for key in keys:
            # touch() ignores keys that left the cycle in the interim.
            self.scheduler.touch(key, "churn")
        if self.obs.enabled:
            self.obs.emit(
                "promotion.released",
                node=self.node,
                xid=xid,
                keys=len(keys),
            )
        return True

    def from_switch(self, msg: Message) -> None:
        """Switch -> controller passthrough; consumes our own probes."""
        if isinstance(msg, PacketIn):
            metadata = self._probe_metadata(msg)
            if metadata is not None:
                if metadata.switch_id == self.switch_number:
                    self.handle_caught_probe(msg, metadata)
                # Probes (ours or other monitors') never reach the
                # controller; the multiplexer routes cross-switch ones.
                return
        if isinstance(msg, BarrierReply) and self._grace_pending:
            # Replies to *our* grace barriers stop here; the
            # controller's own barriers (different xids) pass through.
            if self._grace_barrier_done(msg.xid):
                return
        if self.forward_up is not None:
            self.forward_up(msg)

    @staticmethod
    def _probe_metadata(msg: PacketIn) -> ProbeMetadata | None:
        try:
            _values, payload = parse_packet(msg.payload, msg.in_port)
        except ParseError:
            return None
        return ProbeMetadata.decode(payload)

    # ----- probe generation ---------------------------------------------------

    def probe_for_rule(self, rule: Rule) -> ProbeResult:
        """Probe for ``rule`` in the current expected table.

        Served by the incremental engine: cache hit, cheap revalidation
        of a stale-marked entry, or an assumption-based incremental SAT
        solve — in that order.
        """
        return self.probe_context.probe_for(rule)

    def _check_observability(self, result: ProbeResult) -> ProbeResult:
        """Demote probes whose outcomes can't be told apart from what
        Monocle can actually observe (egress rules, §3.5)."""
        assert result.outcome_present is not None
        assert result.outcome_absent is not None
        present = outcome_observations(
            result.outcome_present, self.observable_ports
        )
        absent = outcome_observations(
            result.outcome_absent, self.observable_ports
        )
        present_returns = bool(present)
        absent_returns = bool(absent)
        if present == absent and present_returns == absent_returns:
            result.ok = False
            result.reason = UnmonitorableReason.UNSATISFIABLE
        return result

    # ----- steady-state cycle ---------------------------------------------

    def start_steady_state(self) -> None:
        """Begin the §3 monitoring cycle at ``config.probe_rate``."""
        if self._steady_running:
            return
        self._steady_running = True
        self.sim.schedule(1.0 / self.config.probe_rate, self._steady_tick)

    def stop_steady_state(self) -> None:
        """Pause the cycle (outstanding probes still resolve)."""
        self._steady_running = False

    def _is_infrastructure(self, rule: Rule) -> bool:
        """Catch/filter rules are not probed (they are the probing plane)."""
        from repro.core.catching import CATCH_PRIORITY, FILTER_PRIORITY

        return rule.priority in (CATCH_PRIORITY, FILTER_PRIORITY)

    def _steady_tick(self) -> None:
        if not self._steady_running:
            return
        self.sim.schedule(1.0 / self.config.probe_rate, self._steady_tick)
        if self.window <= 1:
            # The paper's one-in-flight cycle: one selection per tick.
            obs = self.obs
            promoted_before = (
                self.scheduler.stats.scheduler_promotions
                if obs.enabled
                else 0
            )
            rule = self.scheduler.next_rule(
                self.expected, busy=self._in_flight
            )
            if rule is None:
                return
            promoted = (
                obs.enabled
                and self.scheduler.stats.scheduler_promotions
                > promoted_before
            )
            self._serve_steady_rule(rule, promoted)
            return
        # Pipelined mode: each tick tops the window back up, so the
        # sustained injection rate approaches window * probe_rate while
        # probe_rate still paces (and batches) the injections.
        capacity = self.window - self._steady_depth
        if capacity <= 0:
            return
        promoted_keys: set[tuple] = set()
        rules = self.scheduler.next_rules(
            self.expected,
            busy=self._in_flight,
            limit=capacity,
            promoted_out=promoted_keys,
        )
        for rule in rules:
            self._serve_steady_rule(rule, rule.key() in promoted_keys)
        if self.obs.enabled and rules:
            self.obs.emit(
                "window.depth",
                node=self.node,
                depth=self._steady_depth,
                launched=len(rules),
                window=self.window,
            )

    def _serve_steady_rule(self, rule: Rule, promoted: bool) -> None:
        """Generate and launch one steady-cycle probe (trace included)."""
        obs = self.obs
        tracing = obs.enabled
        span = 0
        if tracing:
            span = obs.next_span()
            wait = self.scheduler.take_wait(rule.key())
            if promoted:
                obs.emit(
                    "scheduler.promoted",
                    node=self.node,
                    span=span,
                    priority=rule.priority,
                    match=rule.match,
                )
            if wait is not None:
                self._h_wait.observe(wait)
            genstats = self.probe_context.stats
            before = (
                genstats.cache_hits,
                genstats.revalidations,
                genstats.probes_generated,
                genstats.generation_seconds,
            )
        result = self.probe_for_rule(rule)
        if tracing:
            genstats = self.probe_context.stats
            if genstats.probes_generated > before[2]:
                source = "solve"
            elif genstats.revalidations > before[1]:
                source = "revalidate"
            else:
                source = "cache"
            obs.emit(
                "probe.generated",
                node=self.node,
                span=span,
                priority=rule.priority,
                match=rule.match,
                cookie=rule.cookie,
                source=source,
                ok=result.ok,
                solve_seconds=genstats.generation_seconds - before[3],
                wait_seconds=wait,
            )
        if not result.ok:
            self.rules_unmonitorable += 1
            return
        self.launch_probe(
            result,
            confirm_on="present",
            on_confirm=self._steady_confirm,
            on_alarm=self._steady_alarm,
            span=span,
            steady=True,
        )

    def _in_flight(self, key: tuple) -> bool:
        """Is a probe for this rule key already outstanding?"""
        return self._inflight_keys.get(key, 0) > 0

    def _steady_alarm(self, probe: OutstandingProbe, kind: str) -> None:
        if kind == "missing" and self._suppress_missing(probe):
            return
        # A raised alarm restarts the rule's strike count (the next
        # alarm needs k fresh strikes); the suspect timestamp stays so
        # an alarm storm still counts toward quarantine scoring.
        self.suspicion.pop(probe.result.rule.key(), None)
        self.alarms.append(
            MonitorAlarm(
                time=self.sim.now,
                rule=probe.result.rule,
                kind=kind,
                detail=f"nonce={probe.nonce}",
            )
        )
        if self.obs.enabled:
            rule = probe.result.rule
            self.obs.emit(
                "alarm.raised",
                node=self.node,
                span=probe.span or None,
                kind=kind,
                cookie=rule.cookie,
                priority=rule.priority,
                match=rule.match,
            )
        # Alarm history feeds the scheduler: weighted policies re-visit
        # misbehaving rules sooner.
        self.scheduler.record_alarm(probe.result.rule.key())

    # ----- alarm hysteresis / quarantine -----------------------------------

    def _steady_confirm(self, probe: OutstandingProbe) -> None:
        """A steady probe confirmed: the rule is vindicated."""
        if self.suspicion or self._suspect_times:
            self._clear_suspicion(probe.result.rule.key())

    def _clear_suspicion(self, key: tuple) -> None:
        self.suspicion.pop(key, None)
        self._suspect_times.pop(key, None)

    def _suppress_missing(self, probe: OutstandingProbe) -> bool:
        """The suspicion state machine's strike path.

        Returns True when the ``missing`` alarm must be swallowed: the
        rule has not yet accumulated ``alarm_confirmations`` strikes,
        or the switch is quarantined.  Dormant (always False, no state
        touched) at the default config.
        """
        config = self.config
        if config.alarm_confirmations <= 1 and (
            config.quarantine_threshold <= 0
        ):
            return False
        rule = probe.result.rule
        key = rule.key()
        now = self.sim.now
        self._last_strike = now
        strikes = self.suspicion.get(key, 0) + 1
        self.suspicion[key] = strikes
        self._suspect_times[key] = now
        self._maybe_quarantine(now)
        if not self.quarantined and strikes >= config.alarm_confirmations:
            # Confirmed missing: let the alarm through (strike count
            # resets in the caller).
            return False
        self.alarms_suppressed += 1
        if self.obs.enabled:
            self.obs.emit(
                "alarm.suppressed",
                node=self.node,
                span=probe.span or None,
                kind="missing",
                cookie=rule.cookie,
                priority=rule.priority,
                match=rule.match,
                strikes=strikes,
                quarantined=self.quarantined,
            )
        if not self.quarantined:
            # Escalating re-probe: resolve the suspicion faster than
            # the steady cycle would come back around.  A quarantined
            # switch runs best-effort — steady cycle only, no extra
            # probe pressure on an already-degraded channel.
            self._schedule_suspicion_reprobe(rule, strikes)
        return True

    def _schedule_suspicion_reprobe(self, rule: Rule, strikes: int) -> None:
        config = self.config
        gap = min(
            config.suspicion_reprobe_interval
            * config.suspicion_backoff ** (strikes - 1),
            config.max_suspicion_interval,
        )
        self.sim.schedule(gap, lambda: self._reprobe_suspect(rule))

    def _reprobe_suspect(self, rule: Rule) -> None:
        key = rule.key()
        if key not in self.suspicion:
            return  # vindicated (or alarmed) in the meantime
        current = self.expected.get(rule.priority, rule.match)
        if current is not rule:
            # The rule left the expected table (or was replaced by an
            # update): stale suspicion, drop it.
            self._clear_suspicion(key)
            return
        if self._in_flight(key):
            # The steady cycle beat us to it; its outcome feeds the
            # same strike/confirm machinery.
            return
        result = self.probe_for_rule(rule)
        if not result.ok:
            self.rules_unmonitorable += 1
            self._clear_suspicion(key)
            return
        self.launch_probe(
            result,
            confirm_on="present",
            on_confirm=self._steady_confirm,
            on_alarm=self._steady_alarm,
        )

    def note_suspect(self, key) -> None:
        """External strike source for quarantine scoring.

        Dynamic mode calls this when an update *gives up* — a switch
        whose updates cannot be confirmed is flapping just as surely as
        one whose steady probes time out.
        """
        if self.config.quarantine_threshold <= 0:
            return
        now = self.sim.now
        self._last_strike = now
        self._suspect_times[key] = now
        self._maybe_quarantine(now)

    def _maybe_quarantine(self, now: float) -> None:
        threshold = self.config.quarantine_threshold
        if threshold <= 0 or self.quarantined:
            return
        window_start = now - self.config.quarantine_window
        recent = 0
        for key, struck in list(self._suspect_times.items()):
            if struck < window_start:
                del self._suspect_times[key]
            else:
                recent += 1
        if recent < threshold:
            return
        self.quarantined = True
        self.quarantines += 1
        if self.obs.enabled:
            self.obs.emit(
                "switch.quarantined",
                node=self.node,
                suspects=recent,
            )
        self.sim.schedule(
            self.config.quarantine_exit, self._quarantine_check
        )

    def _quarantine_check(self) -> None:
        if not self.quarantined:
            return
        quiet = self.sim.now - self._last_strike
        if quiet >= self.config.quarantine_exit:
            self.quarantined = False
            self.suspicion.clear()
            self._suspect_times.clear()
            if self.obs.enabled:
                self.obs.emit(
                    "switch.recovered",
                    node=self.node,
                    quiet_seconds=quiet,
                )
            return
        self.sim.schedule(
            self.config.quarantine_exit - quiet, self._quarantine_check
        )

    # ----- probe lifecycle ---------------------------------------------------

    def launch_probe(
        self,
        result: ProbeResult,
        confirm_on: str = "present",
        on_confirm: Callable[[OutstandingProbe], None] | None = None,
        on_alarm: Callable[[OutstandingProbe, str], None] | None = None,
        present_obs: frozenset[Observation] | None = None,
        absent_obs: frozenset[Observation] | None = None,
        retry_interval: float | None = None,
        retries: int | None = None,
        timeout: float | None = None,
        retry_backoff: float = 1.0,
        max_retry_interval: float = 0.050,
        tolerate_anti: bool = False,
        span: int = 0,
        steady: bool = False,
    ) -> OutstandingProbe:
        """Inject a probe and track it to confirmation or timeout.

        Args:
            retries: re-injection budget; ``-1`` means re-inject until
                the timeout fires (dynamic-mode probes).
            timeout: overrides ``config.probe_timeout``.
            retry_backoff: multiplier applied to the retry interval
                after every re-injection (capped at
                ``max_retry_interval``); >1 lets long-pending update
                probes back off while the switch control queue drains.
            steady: launched by the steady cycle's window (counts
                toward the window depth; dynamic/suspicion probes ride
                along on the same reserved-value pool without
                occupying a steady slot).
        """
        assert result.ok and result.header is not None
        assert result.outcome_present is not None
        assert result.outcome_absent is not None
        if self.obs.enabled and span == 0:
            # Probes launched outside the steady cycle (dynamic-mode
            # update confirmations) still get their own lifecycle span.
            span = self.obs.next_span()
        nonce = next(_nonce_counter)
        if present_obs is None:
            present_obs = outcome_observations(
                result.outcome_present, self.observable_ports
            )
        if absent_obs is None:
            absent_obs = outcome_observations(
                result.outcome_absent, self.observable_ports
            )
        probe = OutstandingProbe(
            nonce=nonce,
            result=result,
            present_obs=present_obs,
            absent_obs=absent_obs,
            first_injected=self.sim.now,
            retries_left=(
                retries if retries is not None else self.config.max_retries
            ),
            on_confirm=on_confirm,
            on_alarm=on_alarm,
            confirm_on=confirm_on,
            tolerate_anti=tolerate_anti,
            span=span,
            steady=steady,
        )
        if self.value_pool is not None and self.window > 1:
            # Windowed mode: every in-flight probe carries a distinct
            # reserved value.  Pool exhaustion (e.g. a burst of dynamic
            # update probes on top of a full steady window) falls back
            # to the canonical header value — the nonce still
            # disambiguates; only wire-level distinctness degrades.
            value = self.value_pool.allocate()
            if value is None:
                self.reserved_overflows += 1
            else:
                probe.reserved_value = value
        self.outstanding[nonce] = probe
        key = result.rule.key()
        self._inflight_keys[key] = self._inflight_keys.get(key, 0) + 1
        if steady:
            self._steady_depth += 1
            if self._steady_depth > self.window_peak:
                self.window_peak = self._steady_depth
        self._inject(probe)
        retry_gap = (
            retry_interval
            if retry_interval is not None
            else self.config.probe_timeout / (self.config.max_retries + 1)
        )
        # Backoff only engages after one timeout's worth of fast
        # retries: prompt confirmation for healthy switches, polite
        # polling when the control queue is backlogged.
        grace = (
            int(self.config.probe_timeout / retry_gap)
            if retry_backoff > 1.0
            else 0
        )
        self._schedule_retry(
            probe, retry_gap, retry_backoff, max_retry_interval, grace
        )
        probe.timeout_event = self.sim.schedule(
            timeout if timeout is not None else self.config.probe_timeout,
            lambda: self._probe_timeout(probe),
        )
        return probe

    def _inject(self, probe: OutstandingProbe) -> None:
        if self.inject_probe is None:
            return
        assert probe.result.header is not None
        assert probe.result.outcome_present is not None
        metadata = ProbeMetadata(
            switch_id=self.switch_number,
            rule_cookie=probe.result.rule.cookie,
            nonce=probe.nonce,
            expected_drop=probe.result.outcome_present.is_drop(),
        )
        from repro.packets.craft import craft_packet

        header = dict(probe.result.header)
        if probe.reserved_value is not None:
            assert self.value_pool is not None
            # Windowed probes rewrite the reserved field from the
            # canonical (slot-0) value the generator pinned to this
            # probe's allocated slot; the catch rules cover every slot,
            # and handle_caught_probe translates the value back before
            # comparing observations.
            header[self.value_pool.field] = probe.reserved_value
        packet = craft_packet(header, metadata.encode())
        in_port = header.get(FieldName.IN_PORT, 0)
        self.probes_sent += 1
        if self.obs.enabled:
            self.obs.emit(
                "probe.sent",
                node=self.node,
                span=probe.span or None,
                nonce=probe.nonce,
                in_port=in_port,
            )
        self.inject_probe(packet, in_port)

    def _schedule_retry(
        self,
        probe: OutstandingProbe,
        gap: float,
        backoff: float = 1.0,
        max_gap: float = 0.050,
        grace: int = 0,
    ) -> None:
        def retry() -> None:
            if probe.done:
                return
            if probe.retries_left == 0:
                return
            if probe.retries_left > 0:
                probe.retries_left -= 1
            self._inject(probe)
            next_gap = gap if grace > 0 else min(gap * backoff, max_gap)
            self._schedule_retry(
                probe, next_gap, backoff, max_gap, max(0, grace - 1)
            )

        self.sim.schedule(gap, retry)

    def _observe_probe_end(
        self, probe: OutstandingProbe, etype: str, negative: bool
    ) -> None:
        """Trace a probe's resolution and record its wire latency."""
        wire = self.sim.now - probe.first_injected
        self.obs.emit(
            etype,
            node=self.node,
            span=probe.span or None,
            nonce=probe.nonce,
            negative=negative,
            wire_seconds=wire,
        )
        if etype == "probe.confirmed" and not negative:
            self._h_wire.observe(wire)

    def _retire(self, probe: OutstandingProbe) -> None:
        """Take a probe out of flight.

        The single bookkeeping point shared by confirmation, timeout,
        invalidation and misbehaving-alarm retirement: marks the probe
        done, drops it from ``outstanding``, decrements the per-key
        in-flight count and steady window depth, and releases the
        probe's reserved value back to the window pool.
        """
        if probe.done:
            return
        probe.done = True
        self.outstanding.pop(probe.nonce, None)
        key = probe.result.rule.key()
        count = self._inflight_keys.get(key, 0)
        if count <= 1:
            self._inflight_keys.pop(key, None)
        else:
            self._inflight_keys[key] = count - 1
        if probe.steady:
            probe.steady = False
            self._steady_depth -= 1
        if probe.reserved_value is not None and self.value_pool is not None:
            self.value_pool.release(probe.reserved_value)
            probe.reserved_value = None

    def invalidate_probe(self, probe: OutstandingProbe) -> None:
        """Cancel an in-flight probe (its table context became stale)."""
        self._retire(probe)

    def _probe_timeout(self, probe: OutstandingProbe) -> None:
        if probe.done:
            return
        self._retire(probe)
        expecting_return = (
            bool(probe.present_obs)
            if probe.confirm_on == "present"
            else bool(probe.absent_obs)
        )
        if not expecting_return:
            # Negative probing (§3.3): silence is (weak) success.
            self.probes_confirmed += 1
            if self.obs.enabled:
                self._observe_probe_end(probe, "probe.confirmed", True)
            if probe.on_confirm is not None:
                probe.on_confirm(probe)
            return
        self.probes_timed_out += 1
        if self.obs.enabled:
            self._observe_probe_end(probe, "probe.timeout", False)
        if probe.on_alarm is not None:
            probe.on_alarm(probe, "missing")

    def handle_caught_probe(
        self, msg: PacketIn, metadata: ProbeMetadata
    ) -> None:
        """A probe of ours came back (routed here by the multiplexer).

        ``msg.in_port`` must already be translated to *this* switch's
        egress port by the multiplexer (it knows which downstream switch
        caught the probe).
        """
        probe = self.outstanding.get(metadata.nonce)
        if probe is None or probe.done:
            self.stale_probes += 1
            return
        try:
            values, _payload = parse_packet(msg.payload, msg.in_port)
        except ParseError:
            self.stale_probes += 1
            return
        if probe.reserved_value is not None:
            # The probe went out with its allocated slot value in the
            # reserved field; translate it back to the canonical value
            # the expected/absent observations were computed with.
            # Sound because OF 1.0 matches are exact-or-wildcard on
            # this field and production rules avoid reserved values,
            # so a rewrite that would break the mapping matches both
            # values identically.
            assert self.value_pool is not None
            field = self.value_pool.field
            if values.get(field) == probe.reserved_value:
                canonical = dict(probe.result.header or ()).get(field)
                if canonical is not None:
                    values[field] = canonical
        observation: Observation = (
            msg.in_port,
            tuple(
                (name, value)
                for name, value in wire_visible_items(values)
                if name is not FieldName.IN_PORT
            ),
        )
        target = (
            probe.present_obs
            if probe.confirm_on == "present"
            else probe.absent_obs
        )
        anti = (
            probe.absent_obs
            if probe.confirm_on == "present"
            else probe.present_obs
        )
        if observation in target:
            self._retire(probe)
            if probe.timeout_event is not None:
                probe.timeout_event.cancel()
            self.probes_confirmed += 1
            if self.obs.enabled:
                self._observe_probe_end(probe, "probe.confirmed", False)
            if probe.on_confirm is not None:
                probe.on_confirm(probe)
        elif observation in anti:
            # Positive evidence of the opposite state.
            if probe.confirm_on == "present" and not probe.tolerate_anti:
                self._retire(probe)
                if probe.timeout_event is not None:
                    probe.timeout_event.cancel()
                if probe.on_alarm is not None:
                    probe.on_alarm(probe, "misbehaving")
            # Otherwise: for deletions ("absent") or tolerant update
            # probes, seeing the old state just means the switch hasn't
            # updated yet; keep waiting.
        else:
            # Neither state explains this observation: corruption.
            if probe.on_alarm is not None:
                probe.on_alarm(probe, "misbehaving")


def restrict_controller_port(ports: frozenset[int]) -> frozenset[int]:
    """Helper: observable ports always include the controller port."""
    return ports | {CONTROLLER_PORT}
