"""Tests for action lists, outcome kinds and forwarding sets."""

import pytest

from repro.openflow.actions import (
    ActionList,
    EcmpGroup,
    Forward,
    Multicast,
    OutcomeKind,
    SetField,
    drop,
    ecmp,
    multicast,
    output,
)
from repro.openflow.fields import FieldName


class TestOutcomeKinds:
    def test_drop_kind(self):
        assert drop().outcome_kind() == OutcomeKind.DROP
        assert ActionList().outcome_kind() == OutcomeKind.DROP

    def test_unicast_kind(self):
        assert output(3).outcome_kind() == OutcomeKind.UNICAST

    def test_multicast_kind(self):
        assert multicast([1, 2, 3]).outcome_kind() == OutcomeKind.MULTICAST

    def test_ecmp_kind(self):
        assert ecmp([1, 2]).outcome_kind() == OutcomeKind.ECMP

    def test_single_port_ecmp_still_ecmp_flagged(self):
        actions = ecmp([4])
        assert actions.is_ecmp
        assert actions.forwarding_set() == frozenset({4})


class TestForwardingSets:
    def test_drop_empty_set(self):
        assert drop().forwarding_set() == frozenset()

    def test_unicast_singleton(self):
        assert output(7).forwarding_set() == frozenset({7})

    def test_multicast_set(self):
        assert multicast([1, 5, 9]).forwarding_set() == frozenset({1, 5, 9})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError):
            ActionList((Forward(1), Forward(1)))
        with pytest.raises(ValueError):
            Multicast((1, 1))
        with pytest.raises(ValueError):
            EcmpGroup((2, 2))


class TestRewrites:
    def test_rewrite_before_output_applies(self):
        actions = output(1, nw_tos=0x2A)
        assert actions.rewrites_on_port(1) == {FieldName.NW_TOS: 0x2A}

    def test_rewrite_applies_to_later_outputs_only(self):
        actions = ActionList(
            (Forward(1), SetField(FieldName.NW_TOS, 5), Forward(2))
        )
        assert actions.rewrites_on_port(1) == {}
        assert actions.rewrites_on_port(2) == {FieldName.NW_TOS: 5}

    def test_later_rewrite_overrides_earlier(self):
        actions = ActionList(
            (
                SetField(FieldName.NW_TOS, 1),
                SetField(FieldName.NW_TOS, 2),
                Forward(1),
            )
        )
        assert actions.rewrites_on_port(1) == {FieldName.NW_TOS: 2}

    def test_apply_rewrites_header(self):
        actions = output(1, nw_tos=7)
        header = {FieldName.NW_TOS: 0, FieldName.NW_SRC: 9}
        observed = actions.apply(header, 1)
        assert observed[FieldName.NW_TOS] == 7
        assert observed[FieldName.NW_SRC] == 9

    def test_rewritten_fields_union(self):
        actions = ActionList(
            (
                SetField(FieldName.NW_TOS, 1),
                Forward(1),
                SetField(FieldName.DL_VLAN, 9),
                Forward(2),
            )
        )
        assert actions.rewritten_fields() == {
            FieldName.NW_TOS,
            FieldName.DL_VLAN,
        }

    def test_setfield_range_checked(self):
        with pytest.raises(ValueError):
            SetField(FieldName.DL_VLAN_PCP, 8)  # 3-bit field

    def test_rewrites_on_unknown_port_raises(self):
        with pytest.raises(KeyError):
            output(1).rewrites_on_port(9)


class TestEcmpGroups:
    def test_per_port_rewrites(self):
        group = EcmpGroup(
            ports=(1, 2),
            rewrites=((2, (SetField(FieldName.NW_TOS, 9),)),),
        )
        actions = ActionList((group,))
        assert actions.rewrites_on_port(1) == {}
        assert actions.rewrites_on_port(2) == {FieldName.NW_TOS: 9}

    def test_shared_rewrites_apply_to_all_ports(self):
        actions = ecmp([1, 2], nw_tos=3)
        assert actions.rewrites_on_port(1) == {FieldName.NW_TOS: 3}
        assert actions.rewrites_on_port(2) == {FieldName.NW_TOS: 3}

    def test_ecmp_must_be_only_forwarding_action(self):
        with pytest.raises(ValueError):
            ActionList((EcmpGroup((1,)), Forward(2)))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            EcmpGroup(())

    def test_rewrite_for_foreign_port_rejected(self):
        with pytest.raises(ValueError):
            EcmpGroup(ports=(1,), rewrites=((2, ()),))


class TestEquality:
    def test_equal_action_lists(self):
        assert output(1, nw_tos=2) == output(1, nw_tos=2)

    def test_unequal_action_lists(self):
        assert output(1) != output(2)
        assert drop() != output(1)

    def test_hashable(self):
        assert len({output(1), output(1), drop()}) == 2

    def test_drop_marker_vs_empty_equivalent_outcome(self):
        assert drop().forwarding_set() == ActionList().forwarding_set()
