"""Monocle core: probe generation and data-plane monitoring.

* :mod:`repro.core.constraints` — the paper's Table 1 constraints
  (Hit / Distinguish / Collect) compiled to CNF, including the
  DiffOutcome = DiffPorts | DiffRewrite analysis for unicast, rewrite,
  drop, multicast and ECMP rules (§3).
* :mod:`repro.core.probegen` — the probe generator: §5.4 overlap
  filtering, SAT solving, abstract-solution decoding, §5.2 packet
  crafting, and expected-outcome computation.
* :mod:`repro.core.monitor` — the Monitor proxy: expected flow-table
  tracking, steady-state probing cycles, retries/timeouts, alarms.
* :mod:`repro.core.schedule` — the probe cycle as a subsystem: a
  delta-maintained :class:`ProbeScheduler` with pluggable selection
  policies (round-robin, recent-churn-first, weighted stride).
* :mod:`repro.core.dynamic` — reconfiguration monitoring: probing rule
  additions, modifications and deletions, queueing of overlapping
  unconfirmed updates, and rule-installation acknowledgments (§4).
* :mod:`repro.core.droppostpone` — the drop-postponing transform for
  reliable drop-rule confirmation (§4.3).
* :mod:`repro.core.catching` — network-wide catching-rule planning via
  vertex coloring, strategies 1 and 2 (§6).
* :mod:`repro.core.multiplexer` — the Multiplexer proxy fanning
  PacketOut/PacketIn between Monitors and switches (§7).
"""

from repro.core.constraints import (
    ConstraintCompiler,
    DistinguishEncoding,
    IncrementalProbeEncoder,
    SolverSink,
)
from repro.core.probegen import (
    ProbeGenContext,
    ProbeGenContextStats,
    ProbeGenerator,
    ProbeResult,
    UnmonitorableReason,
    verify_probe,
)
from repro.core.monitor import Monitor, MonitorAlarm, MonitorConfig
from repro.core.schedule import (
    ProbeScheduler,
    RecentChurnFirstPolicy,
    RoundRobinPolicy,
    SchedulerStats,
    WeightedPolicy,
)
from repro.core.dynamic import DynamicMonitor, UpdateAck
from repro.core.catching import CatchingPlan, plan_catching_rules
from repro.core.droppostpone import postpone_drop_rule, DROP_TAG_TOS

__all__ = [
    "ConstraintCompiler",
    "DistinguishEncoding",
    "IncrementalProbeEncoder",
    "SolverSink",
    "ProbeGenContext",
    "ProbeGenContextStats",
    "ProbeGenerator",
    "ProbeResult",
    "UnmonitorableReason",
    "verify_probe",
    "Monitor",
    "MonitorAlarm",
    "MonitorConfig",
    "ProbeScheduler",
    "RecentChurnFirstPolicy",
    "RoundRobinPolicy",
    "SchedulerStats",
    "WeightedPolicy",
    "DynamicMonitor",
    "UpdateAck",
    "CatchingPlan",
    "plan_catching_rules",
    "postpone_drop_rule",
    "DROP_TAG_TOS",
]
