"""Conservative-time coordinator for sharded fleet scenarios.

:func:`run_sharded_scenario` is the ``workers > 1`` twin of
:func:`~repro.fleet.runner.run_scenario`: it plans the shard cut,
spawns one worker process per shard (each with its own sim kernel —
see :mod:`repro.fleet.shardworker`), drives the barrier protocol over
``multiprocessing`` pipes, and merges the per-shard results into one
fleet-wide :class:`~repro.fleet.metrics.FleetMetrics` plus a single
sim-time-ordered trace.

The barrier rule: windows exist only because of *cross-shard*
interaction.  A pure partition (no topology link crosses the cut) runs
each shard start-to-finish in one window with zero barriers — that is
the configuration whose alarm timeline is byte-identical to a
single-process run.  With cut links, the coordinator steps all shards
through quantum-sized windows; anything announced inside window k
(failure envelopes, gossip payloads) is delivered at the start of
window k+1, so cross-shard effects land at most one quantum late.
Windows no shard has events in are fast-forwarded using each kernel's
:meth:`~repro.sim.kernel.Simulator.next_event_time` peek.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from typing import TYPE_CHECKING, Any

from repro.fleet.failures import Injection
from repro.fleet.metrics import DetectionRecord, merge_fleet_metrics
from repro.fleet.sharding import (
    GossipDirectory,
    ShardPlan,
    plan_shards,
    spec_nodes,
)
from repro.fleet.shardworker import ShardResult, _announcer, worker_main

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from multiprocessing.connection import Connection

    from repro.fleet.runner import ScenarioResult, ScenarioSpec


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (workers inherit the built spec
    cheaply); whatever the platform default is otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def default_barrier_quantum(spec: "ScenarioSpec") -> float:
    """One probe timeout, capped at a quarter of the scenario.

    The probe timeout is the natural cross-shard reaction scale: a
    failure's first observable consequence is a probe timing out, so
    delivering envelopes a timeout late keeps detection latencies
    within one quantum of the in-process run.
    """
    return min(spec.probe_timeout, spec.duration / 4.0)


class _WorkerHandle:
    """One worker process plus its coordinator-side pipe end."""

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        spec: "ScenarioSpec",
        plan: ShardPlan,
        shard: int,
    ) -> None:
        self.shard = shard
        self.conn: "Connection"
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child, spec, plan, shard),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self.process.start()
        child.close()
        self.next_event: float | None = None

    def recv(self, expect: str) -> Any:
        message = self.conn.recv()
        if message[0] == "error":
            raise ShardRunError(
                f"shard {self.shard} worker failed:\n{message[1]}"
            )
        if message[0] != expect:
            raise ShardRunError(
                f"shard {self.shard} protocol error: got {message[0]!r}, "
                f"expected {expect!r}"
            )
        return message[1] if len(message) > 1 else None

    def close(self) -> None:
        try:
            self.conn.close()
        finally:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5.0)


class ShardRunError(RuntimeError):
    """A worker process died or broke protocol."""


def run_sharded_scenario(spec: "ScenarioSpec") -> "ScenarioResult":
    """Run one scenario across ``spec.workers`` shard processes."""
    from repro.fleet.runner import ScenarioResult, run_scenario
    from dataclasses import replace

    plan = plan_shards(
        spec.build_topology(), spec.workers, spec.shard_policy
    )
    if plan.workers <= 1:
        # Fewer switches than workers: nothing to shard.
        return run_scenario(replace(spec, workers=1))

    ctx = _mp_context()
    workers = [
        _WorkerHandle(ctx, spec, plan, shard)
        for shard in range(plan.workers)
    ]
    try:
        for worker in workers:
            worker.recv("ready")
        build_done = _time.perf_counter()
        directory = GossipDirectory()
        barriers = _drive_windows(spec, plan, workers, directory)
        results: list[ShardResult] = []
        for worker in workers:
            worker.conn.send(("finish",))
        for worker in workers:
            results.append(worker.recv("result"))
        run_seconds = _time.perf_counter() - build_done
    finally:
        for worker in workers:
            worker.close()

    return _merge_results(
        spec, plan, results, directory, barriers, run_seconds
    )


def _route_envelopes(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    emitted: list[tuple[float, int]],
) -> dict[int, list[tuple[float, int]]]:
    """Address announced envelopes to every owning shard but the
    announcer (who already applied its half at fire time)."""
    routed: dict[int, list[tuple[float, int]]] = {}
    for fire_time, index in emitted:
        nodes = spec_nodes(spec.failures[index])
        owners = {plan.owner(node) for node in nodes}
        owners.discard(_announcer(plan, nodes))
        for shard in owners:
            routed.setdefault(shard, []).append((fire_time, index))
    return routed


def _drive_windows(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    workers: list[_WorkerHandle],
    directory: GossipDirectory,
) -> int:
    """Step every shard to ``spec.duration``; returns the barrier count.

    Pure partitions take the single-window fast path: no cross-shard
    links means no envelopes and no gossip peers worth the pipe
    traffic, so each worker runs its whole scenario uninterrupted.
    """
    duration = spec.duration
    if plan.is_pure:
        for worker in workers:
            worker.conn.send(("run", duration, {}))
        for worker in workers:
            worker.recv("window")
        return 0

    quantum = spec.barrier_quantum or default_barrier_quantum(spec)
    pending: dict[int, list[tuple[float, int]]] = {}
    barriers = 0
    now = 0.0
    while now < duration:
        target = min(duration, now + quantum)
        next_times = [
            w.next_event for w in workers if w.next_event is not None
        ]
        if barriers and not next_times and not pending:
            # Every kernel is idle and nothing is in flight: only the
            # final clock advance remains.
            target = duration
        elif barriers and next_times and min(next_times) >= target:
            # No shard has an event inside this window; fast-forward
            # one quantum past the earliest pending event instead of
            # lock-stepping through empty quanta.
            target = min(duration, min(next_times) + quantum)
        requests = directory.export_requests()
        for worker in workers:
            deliveries: dict[str, Any] = {}
            if worker.shard in pending:
                deliveries["envelopes"] = pending[worker.shard]
            exports_wanted = requests.get(worker.shard)
            if exports_wanted:
                deliveries["export_requests"] = exports_wanted
            imports = directory.imports_for(worker.shard)
            if imports:
                deliveries["imports"] = imports
            worker.conn.send(("run", target, deliveries))
        pending = {}
        emitted: list[tuple[float, int]] = []
        for worker in workers:
            payload = worker.recv("window")
            emitted.extend(payload["emitted"])
            directory.publish(worker.shard, payload["digests"])
            directory.receive_exports(worker.shard, payload["exports"])
            worker.next_event = payload["next_event"]
        for shard, envelopes in _route_envelopes(
            spec, plan, emitted
        ).items():
            pending.setdefault(shard, []).extend(envelopes)
        barriers += 1
        now = target
    if pending:
        # Envelopes announced in the final window: deliver them in one
        # zero-length window so the peer's injection record is filled
        # (no sim time remains for alarms, but the merged report must
        # still describe the injection).
        for worker in workers:
            worker.conn.send(
                ("run", duration, {"envelopes": pending.get(worker.shard, [])})
            )
        for worker in workers:
            worker.recv("window")
        barriers += 1
    return barriers


def _merge_results(
    spec: "ScenarioSpec",
    plan: ShardPlan,
    results: list[ShardResult],
    directory: GossipDirectory,
    barriers: int,
    run_seconds: float,
) -> "ScenarioResult":
    from repro.fleet.runner import ScenarioResult

    results.sort(key=lambda res: res.shard)
    detections, injections = _merge_detections(results)
    latencies: list[float] = []
    for res in results:
        latencies.extend(res.confirmation_latencies)
    metrics = merge_fleet_metrics(
        [res.metrics for res in results],
        detections=detections,
        confirmation_latencies=latencies,
        duration=spec.duration,
    )
    metrics.workers = plan.workers
    metrics.shard_policy = plan.policy
    metrics.cut_links = len(plan.cut_edges)
    metrics.barriers = barriers
    metrics.gossip_digests_published = directory.digests_published
    metrics.gossip_entries_shipped = directory.entries_shipped
    metrics.gossip_entries_imported = sum(
        res.gossip_entries_imported for res in results
    )

    observer = spec.build_observer()
    if observer is not None:
        rows = sorted(
            (row for res in results for row in res.trace_rows),
            # Sort on the timestamp alone: later tuple fields hold
            # dicts, which do not compare.  The sort is stable, so
            # same-timestamp rows keep shard order.
            key=lambda row: row[0],
        )
        observer.trace.extend_raw(rows)
        observer.trace.emitted = sum(res.trace_emitted for res in results)

    result = ScenarioResult(
        spec=spec,
        deployment=None,
        injections=injections,
        metrics=metrics,
        observer=observer,
        timings={"run_seconds": run_seconds},
    )
    result.export()
    return result


def _merge_detections(
    results: list[ShardResult],
) -> tuple[list[DetectionRecord], list[Injection]]:
    """Fuse per-shard detection records by global failure-spec index.

    Single-owner specs appear in exactly one shard.  A cut-crossing
    spec appears once per adjacent shard — same fire time (the
    envelope carries the announcer's clock), each half knowing only
    its own switches' cookies — so the merged record unions node and
    cookie sets and keeps the earliest attributable alarm.
    """
    by_index: dict[int, list[DetectionRecord]] = {}
    for res in results:
        for index, record in zip(
            res.injection_indices, res.metrics.detections
        ):
            by_index.setdefault(index, []).append(record)
    detections: list[DetectionRecord] = []
    injections: list[Injection] = []
    for index in sorted(by_index):
        parts = by_index[index]
        merged = parts[0]
        injection = merged.injection
        for other in parts[1:]:
            injection.nodes |= other.injection.nodes
            injection.cookies |= other.injection.cookies
            injection.broad = injection.broad or other.injection.broad
            if injection.error and not other.injection.error:
                injection.error = None
                injection.description = other.injection.description
            if other.detected_at is not None and (
                merged.detected_at is None
                or other.detected_at < merged.detected_at
            ):
                merged.detected_at = other.detected_at
                merged.detected_on = other.detected_on
                merged.alarm_kind = other.alarm_kind
        detections.append(merged)
        injections.append(injection)
    return detections, injections
