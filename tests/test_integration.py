"""End-to-end integration scenarios combining the whole stack.

These are miniature versions of the paper's experiments, small enough
for the unit-test suite; the full-size versions live in benchmarks/.
"""

import networkx as nx

from repro.controller import ConfirmMode, ConsistentPathUpdate, SdnController
from repro.core.dynamic import UpdateAck
from repro.core.monitor import MonitorConfig
from repro.core.multiplexer import MonocleSystem
from repro.network import Network
from repro.network.traffic import (
    FlowSpec,
    TrafficGenerator,
    decode_flow_payload,
)
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.sim.kernel import Simulator
from repro.switches.profiles import HP_5406ZL, OVS, PICA8
from repro.topology.generators import fat_tree, star, triangle


class TestMiniFigure4:
    """Steady-state failure detection on a star (mini §8.1.1)."""

    def test_single_rule_failure_detected_within_cycle_plus_timeout(self):
        sim = Simulator()
        net = Network(
            sim,
            star(4),
            profiles=lambda n: HP_5406ZL if n == "hub" else OVS,
            seed=3,
        )
        config = MonitorConfig(
            probe_rate=500.0, probe_timeout=0.150, max_retries=3
        )
        system = MonocleSystem(net, config=config, dynamic=False)
        rules = []
        for i in range(100):
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(net.port_toward["hub"][f"leaf{i % 4}"]),
            )
            system.preinstall_production_rule("hub", rule)
            rules.append(rule)
        system.monitor("hub").start_steady_state()
        sim.run_for(0.3)
        net.switch("hub").fail_rule_in_dataplane(rules[37])
        t_fail = sim.now
        sim.run_for(1.0)
        alarms = system.monitor("hub").alarms
        assert alarms
        detection = alarms[0].time - t_fail
        # Cycle = 100/500 = 0.2 s; + timeout 0.15 s; + slack.
        assert 0.1 < detection < 0.45
        assert alarms[0].rule.cookie == rules[37].cookie

    def test_link_failure_fails_many_rules(self):
        sim = Simulator()
        net = Network(sim, star(4), seed=3)
        system = MonocleSystem(
            net, config=MonitorConfig(probe_rate=500.0), dynamic=False
        )
        rules = []
        for i in range(40):
            rule = Rule(
                priority=100,
                match=Match.build(nw_dst=0x0A000000 + i),
                actions=output(net.port_toward["hub"][f"leaf{i % 4}"]),
            )
            system.preinstall_production_rule("hub", rule)
            rules.append(rule)
        system.monitor("hub").start_steady_state()
        sim.run_for(0.3)
        net.fail_link("hub", "leaf1")
        sim.run_for(1.5)
        # All 10 rules forwarding to leaf1 should alarm.
        alarmed = {a.rule.cookie for a in system.monitor("hub").alarms}
        expected = {
            r.cookie
            for r in rules
            if r.forwarding_set() == {net.port_toward["hub"]["leaf1"]}
        }
        assert expected <= alarmed


class TestMiniFigure5:
    """Consistent update with traffic: barriers blackhole, Monocle doesn't."""

    def run_experiment(self, use_monocle):
        sim = Simulator()
        def profiles(n):
            return PICA8 if n == "s3" else OVS

        net = Network(sim, triangle(), profiles=profiles, seed=13)
        h1 = net.add_host("h1", "s1")
        h2 = net.add_host("h2", "s2")
        match = Match.build(dl_type=0x0800, nw_proto=17, nw_dst=0x0A000002)

        if use_monocle:
            box = {}
            system = MonocleSystem(
                net,
                dynamic=True,
                controller_handler=lambda n, m: box["c"].handle_message(n, m),
            )
            controller = SdnController(sim, send=system.send_to_switch)
            box["c"] = controller
            confirm = ConfirmMode.MONOCLE_ACK
            installer = system.preinstall_production_rule
        else:
            controller = SdnController(
                sim, send=lambda n, m: net.channel(n).send_down(m)
            )
            for node in net.switches:
                net.channel(node).up_handler = (
                    lambda m, n=node: controller.handle_message(n, m)
                )
            confirm = ConfirmMode.BARRIER

            def installer(node, rule):
                net.switch(node).install_directly(rule)

        # Old path: s1 -> s2 -> h2.
        installer(
            "s1",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s1"]["s2"]),
            ),
        )
        installer(
            "s2",
            Rule(
                priority=50,
                match=match,
                actions=output(net.port_toward["s2"]["h2"]),
            ),
        )

        spec = FlowSpec(
            flow_id=1,
            header_fields=(
                ("dl_type", 0x0800),
                ("nw_proto", 17),
                ("nw_dst", 0x0A000002),
            ),
        )
        traffic = TrafficGenerator(sim, h1, spec, rate=300.0)
        traffic.start()
        sim.run_for(0.2)

        update = ConsistentPathUpdate(
            controller=controller,
            match=match,
            priority=50,
            old_path=["s1", "s2"],
            new_path=["s1", "s3", "s2"],
            port_toward=net.port_toward,
            final_port=net.port_toward["s2"]["h2"],
            confirm=confirm,
        )
        update.start()
        sim.run_for(3.0)
        traffic.stop()
        sim.run_for(0.2)
        assert update.done

        # Account losses: sequence gaps at the receiver after dedup.
        seqs = sorted(
            seq
            for packet in h2.received
            if (decoded := decode_flow_payload(packet.payload)) is not None
            for _, seq in [decoded]
        )
        sent = h1.sent_count
        lost = sent - len(seqs)
        return lost, sent

    def test_barrier_update_drops_packets(self):
        lost, sent = self.run_experiment(use_monocle=False)
        assert lost > 0  # the premature ack opened a blackhole window

    def test_monocle_update_lossless(self):
        lost, sent = self.run_experiment(use_monocle=True)
        assert lost <= 1  # at most a boundary packet in flight


class TestMiniFigure8:
    """Batched path installation in a FatTree with update confirmation."""

    def test_paths_installed_and_confirmed(self):
        sim = Simulator()
        graph = fat_tree(4)
        net = Network(sim, graph, profiles=PICA8, seed=21)
        acks = []
        box = {}

        def handler(node, msg):
            if isinstance(msg, UpdateAck):
                acks.append(msg)
            box["c"].handle_message(node, msg)

        system = MonocleSystem(
            net,
            config=MonitorConfig(update_probe_interval=0.005),
            dynamic=True,
            controller_handler=handler,
        )
        controller = SdnController(sim, send=system.send_to_switch)
        box["c"] = controller

        # Install 10 paths edge->agg->core->agg->edge.
        import networkx as nx

        paths = []
        edges = sorted(n for n in graph.nodes if n.startswith("edge"))
        for i in range(10):
            src, dst = edges[i % len(edges)], edges[(i + 3) % len(edges)]
            paths.append(nx.shortest_path(graph, src, dst))

        done = []
        for i, path in enumerate(paths):
            controller.install_path(
                path=path,
                match=Match.build(nw_dst=0x0A000000 + i),
                priority=100,
                port_toward=net.port_toward,
                final_port=net.switch_facing_ports(path[-1])[0],
                confirm=ConfirmMode.MONOCLE_ACK,
                on_all_confirmed=lambda i=i: done.append(i),
            )
        sim.run_for(20.0)
        assert sorted(done) == list(range(10))
        # Every rule is genuinely in its switch's data plane.
        for i, path in enumerate(paths):
            match = Match.build(nw_dst=0x0A000000 + i)
            for node in path:
                assert net.switch(node).dataplane.get(100, match) is not None
