"""Topology generators and corpora.

* :mod:`repro.topology.generators` — the concrete experiment topologies:
  the §8.1.1 star, the §8.1.2 triangle, the §8.4 k=4 FatTree (20
  switches), plus linear/ring utilities.
* :mod:`repro.topology.corpus` — synthetic stand-ins for the Internet
  Topology Zoo (261 graphs) and Rocketfuel (10 graphs) datasets used by
  Figure 9, with matched size and degree characteristics.
* :mod:`repro.topology.io` — a minimal edge-list reader/writer so users
  can evaluate their own topologies.
"""

from repro.topology.generators import fat_tree, linear, ring, star, triangle
from repro.topology.corpus import (
    rocketfuel_like_corpus,
    topology_zoo_like_corpus,
)
from repro.topology.io import read_edgelist, write_edgelist

__all__ = [
    "fat_tree",
    "linear",
    "ring",
    "star",
    "triangle",
    "rocketfuel_like_corpus",
    "topology_zoo_like_corpus",
    "read_edgelist",
    "write_edgelist",
]
