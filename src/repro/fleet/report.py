"""Plain-text reporting for fleet scenarios."""

from __future__ import annotations

from typing import Any

from repro.analysis import format_table
from repro.fleet.metrics import FleetMetrics
from repro.obs.metrics import window_rates


def format_fleet_report(metrics: FleetMetrics) -> str:
    """Render per-switch and aggregate fleet metrics as text tables."""
    lines: list[str] = []

    rows = [
        [
            repr(m.node),
            m.rules_installed,
            m.probes_sent,
            f"{m.probe_rate(metrics.duration):.0f}",
            m.probes_confirmed,
            m.probes_timed_out,
            m.alarms,
            m.packetouts_processed,
            m.packetins_sent,
        ]
        for m in metrics.per_switch
    ]
    lines.append(
        format_table(
            [
                "switch",
                "rules",
                "probes",
                "probes/s",
                "confirmed",
                "timed out",
                "alarms",
                "PacketOut",
                "PacketIn",
            ],
            rows,
        )
    )

    if metrics.detections:
        lines.append("")
        lines.append("injected failures:")
        rows = []
        for record in metrics.detections:
            injection = record.injection
            if record.detected:
                status = (
                    f"{record.latency:.3f}s on {record.detected_on!r}"
                    f" ({record.alarm_kind})"
                )
            elif injection.error is not None:
                status = "INJECTION FAILED"
            elif injection.chaos:
                # Substrate chaos has nothing to detect; the monitor's
                # job is to ride it out without false alarms.
                status = "CHAOS"
            else:
                status = "NOT DETECTED"
            rows.append(
                [injection.kind, f"{injection.time:.3f}", status,
                 injection.description]
            )
        lines.append(format_table(["kind", "t", "detection", "detail"], rows))

    lines.append("")
    lines.append(
        f"aggregate: {metrics.probes_sent} probes "
        f"({metrics.probes_sent / metrics.duration:.0f}/s fleet-wide), "
        f"{metrics.probes_confirmed} confirmed, "
        f"{metrics.probes_routed} routed by the multiplexer, "
        f"{metrics.probes_unroutable} unroutable"
    )
    lines.append(
        f"overhead: {metrics.packetout_total} PacketOuts, "
        f"{metrics.packetin_total} PacketIns across the fleet"
    )
    served = (
        metrics.probes_generated
        + metrics.probe_cache_hits
        + metrics.probe_revalidations
    )
    if served:
        # No wall-clock numbers here: reports must be byte-identical
        # across runs of the same seed (determinism checks diff them).
        lines.append(
            f"probe generation: {metrics.probes_generated} incremental "
            f"SAT solves, {metrics.probe_cache_hits} cache hits, "
            f"{metrics.probe_revalidations} revalidations "
            f"({100.0 * (served - metrics.probes_generated) / served:.0f}% "
            "served without a solve)"
        )
    policies = sorted({m.probe_policy for m in metrics.per_switch})
    if policies:
        # Counters only (no wall-clock): determinism checks diff reports.
        lines.append(
            f"scheduling: policies {'/'.join(policies)}, "
            f"{metrics.cycle_rebuilds} cycle builds for "
            f"{len(metrics.per_switch)} switches, "
            f"{metrics.scheduler_promotions} promotions"
        )
    if metrics.tables_fingerprinted:
        shared_now = sum(1 for m in metrics.per_switch if m.context_shared)
        lines.append(
            f"context sharing: {metrics.contexts_created} contexts for "
            f"{metrics.tables_fingerprinted} tables "
            f"({metrics.contexts_deduped} deduped, "
            f"{metrics.contexts_forked} forked, "
            f"{metrics.contexts_remerged} re-merged, "
            f"{shared_now} switches still sharing)"
        )
    if metrics.workers > 1:
        lines.append(
            f"sharding: {metrics.workers} workers "
            f"({metrics.shard_policy} policy), "
            f"{metrics.cut_links} cut links, {metrics.barriers} barriers, "
            f"gossip {metrics.gossip_digests_published} digests / "
            f"{metrics.gossip_entries_shipped} shipped / "
            f"{metrics.gossip_entries_imported} imported"
        )
    if metrics.updates_confirmed or metrics.updates_given_up:
        lines.append(
            f"updates: {metrics.updates_confirmed} confirmed, "
            f"{metrics.updates_given_up} given up"
        )
    if metrics.confirmation_latency is not None:
        s = metrics.confirmation_latency
        lines.append(
            "confirmation latency: "
            f"n={s.count} mean={s.mean * 1000:.1f}ms "
            f"median={s.median * 1000:.1f}ms p95={s.p95 * 1000:.1f}ms "
            f"max={s.maximum * 1000:.1f}ms"
        )
    if metrics.alarms_suppressed or metrics.quarantines:
        lines.append(
            f"resilience: {metrics.alarms_suppressed} alarms suppressed "
            f"by hysteresis, {metrics.quarantines} quarantines "
            f"({metrics.switches_quarantined} switches still quarantined)"
        )
    if metrics.probe_window > 1 or metrics.window_clamps:
        lines.append(
            f"pipelining: window {metrics.probe_window} "
            f"(clamped by {metrics.window_clamps} slots fleet-wide), "
            f"peak depth {metrics.window_peak}, "
            f"{metrics.reserved_overflows} reserved-value overflows"
        )
    if metrics.worker_restarts or metrics.shards_failed:
        lines.append(
            f"self-healing: {metrics.worker_restarts} worker restarts, "
            f"{metrics.shards_failed} shards failed "
            f"[{', '.join(metrics.shard_status)}]"
        )
    faults = [d for d in metrics.detections if not d.injection.chaos]
    detected = sum(1 for d in faults if d.detected)
    lines.append(
        f"detection: {detected}/{len(faults)} injected failures "
        f"detected, {len(metrics.false_alarms)} false alarms"
    )

    timeline_section = _format_timeline(metrics.obs_snapshots)
    if timeline_section:
        lines.append("")
        lines.extend(timeline_section)
    return "\n".join(lines)


def _format_timeline(snapshots: list[dict[str, Any]]) -> list[str]:
    """Sim-time-windowed rates from the observer's metric snapshots.

    Empty when observability was off (or only one snapshot exists —
    rates need a window).  All values derive from sim-time counters,
    so the section is as deterministic as the rest of the report.
    """
    if len(snapshots) < 2:
        return []
    probes = dict(window_rates(snapshots, "monocle_probes_sent_total"))
    alarms = dict(window_rates(snapshots, "monocle_alarms_total"))
    solves = dict(window_rates(snapshots, "monocle_probegen_solves_total"))
    hits = dict(
        window_rates(snapshots, "monocle_probe_cache_hits_total")
    )
    rows = []
    for ts in sorted(probes):
        solve_rate = solves.get(ts, 0.0)
        hit_rate = hits.get(ts, 0.0)
        served = solve_rate + hit_rate
        ratio = f"{hit_rate / served:.2f}" if served > 0 else "-"
        rows.append(
            [
                f"{ts:.2f}",
                f"{probes.get(ts, 0.0):.0f}",
                f"{alarms.get(ts, 0.0):.1f}",
                f"{solve_rate:.1f}",
                ratio,
            ]
        )
    return [
        "timeline (sim-time windowed rates from obs snapshots):",
        format_table(
            ["t", "probes/s", "alarms/s", "solves/s", "cache-hit"],
            rows,
        ),
    ]
