"""Tests for the probe generator: end-to-end Table 1 compliance,
unmonitorable detection, rule-kind coverage, and the §5.4 filter."""

import pytest

from repro.core.probegen import (
    ProbeGenerator,
    UnmonitorableReason,
    expected_outcomes,
    verify_probe,
)
from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable

CATCH = Match.build(dl_vlan=0xF03)
SRC = 0x0A000001
DST = 0x0A000002


def generator(**kwargs):
    return ProbeGenerator(catch_match=CATCH, **kwargs)


def table_of(*rules):
    table = FlowTable(check_overlap=False)
    for rule in rules:
        table.install(rule)
    return table


class TestBasicUnicast:
    def test_simple_rule_over_default(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator().generate(table, probed)
        assert result.ok
        assert verify_probe(table, probed, result.header, CATCH) == (True, "ok")
        assert result.header[FieldName.DL_VLAN] == 0xF03
        assert result.packet is not None and len(result.packet) > 20

    def test_paper_3_1_example(self):
        rlowest = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        rlower = Rule(priority=5, match=Match.build(nw_src=SRC), actions=output(2))
        rprobed = Rule(
            priority=10, match=Match.build(nw_src=SRC, nw_dst=DST), actions=output(1)
        )
        table = table_of(rlowest, rlower, rprobed)
        result = generator().generate(table, rprobed)
        assert result.ok
        # The only valid probe is (srcIP=10.0.0.1, dstIP=10.0.0.2).
        assert result.header[FieldName.NW_SRC] == SRC
        assert result.header[FieldName.NW_DST] == DST
        assert verify_probe(table, rprobed, result.header, CATCH)[0]

    def test_probe_avoids_higher_priority_rules(self):
        probed = Rule(
            priority=5, match=Match.build(nw_dst=(0x0A000000, 24)), actions=output(2)
        )
        shadow = Rule(priority=9, match=Match.build(nw_dst=DST), actions=output(3))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, shadow, default)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.header[FieldName.NW_DST] != DST
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_outcomes_reported(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator().generate(table, probed)
        assert result.outcome_present.ports() == {2}
        assert result.outcome_absent.ports() == {1}
        assert result.expects_return()


class TestUnmonitorable:
    def test_fully_shadowed_rule(self):
        primary = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(1))
        backup = Rule(priority=5, match=Match.build(nw_dst=DST), actions=output(2))
        table = table_of(primary, backup)
        result = generator().generate(table, backup)
        assert not result.ok
        assert result.reason == UnmonitorableReason.UNSATISFIABLE

    def test_same_outcome_as_default(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(1))
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert not result.ok

    def test_catch_conflict_unmonitorable(self):
        # The rule pins dl_vlan to a non-reserved value: the probe cannot
        # both hit it and match the catching rule.
        probed = Rule(priority=10, match=Match.build(dl_vlan=5), actions=output(1))
        table = table_of(probed)
        result = generator().generate(table, probed)
        assert not result.ok

    def test_drop_over_drop_default_unmonitorable(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=drop())
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=drop())
        table = table_of(default, probed)
        assert not generator().generate(table, probed).ok


class TestRewriteRules:
    def test_rewrite_distinguishes_same_port(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10,
            match=Match.build(nw_src=SRC),
            actions=output(1, nw_tos=0x2A),
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.header[FieldName.NW_TOS] != 0x2A
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_probe_generator_refuses_reserved_field_rewrites(self):
        bad = Rule(
            priority=5,
            match=Match.build(nw_src=SRC),
            actions=output(1, dl_vlan=0xF03),
        )
        table = table_of(bad)
        with pytest.raises(ValueError):
            generator().generate(table, bad)


class TestDropRules:
    def test_negative_probe_for_drop(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=drop())
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.outcome_present.is_drop()
        assert not result.expects_return()
        assert result.outcome_absent.ports() == {1}
        assert verify_probe(table, probed, result.header, CATCH)[0]


class TestMulticastEcmp:
    def test_multicast_vs_unicast(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=multicast([1, 2])
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_ecmp_over_member_unicast_unmonitorable(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=ecmp([1, 2])
        )
        table = table_of(default, probed)
        # ECMP may pick port 1 = the default's port: ambiguous.
        assert not generator().generate(table, probed).ok

    def test_ecmp_disjoint_from_default(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(5))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=ecmp([1, 2])
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.outcome_present.ecmp
        assert verify_probe(table, probed, result.header, CATCH)[0]


class TestInPortHandling:
    def test_valid_in_ports_respected(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator(valid_in_ports=(3, 7)).generate(table, probed)
        assert result.ok
        assert result.header[FieldName.IN_PORT] in (3, 7)

    def test_in_port_match_conflicting_with_valid_ports(self):
        probed = Rule(
            priority=10, match=Match.build(in_port=9, nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator(valid_in_ports=(3, 7)).generate(table, probed)
        assert not result.ok


class TestOverlapFilter:
    def build_big_table(self):
        rules = [
            Rule(
                priority=100 + i,
                match=Match.build(nw_dst=0x14000000 + i),
                actions=output(1 + i % 3),
            )
            for i in range(50)
        ]
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        return table_of(probed, default, *rules), probed

    def test_filter_reduces_instance_size(self):
        table, probed = self.build_big_table()
        with_filter = generator().generate(table, probed)
        without_filter = generator(overlap_filter=False).generate(table, probed)
        assert with_filter.ok and without_filter.ok
        assert with_filter.overlapping_rules < without_filter.overlapping_rules
        assert with_filter.cnf_clauses < without_filter.cnf_clauses

    def test_filter_preserves_probe_validity(self):
        table, probed = self.build_big_table()
        for flag in (True, False):
            result = generator(overlap_filter=flag).generate(table, probed)
            assert verify_probe(table, probed, result.header, CATCH)[0]


class TestExpectedOutcomes:
    def test_present_and_absent(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        header = {FieldName.NW_DST: DST}
        present, absent = expected_outcomes(table, probed, header)
        assert present.ports() == {2}
        assert absent.ports() == {1}

    def test_absent_to_miss_drop(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        table = table_of(probed)
        present, absent = expected_outcomes(table, probed, {FieldName.NW_DST: DST})
        assert present.ports() == {2}
        assert absent.is_drop()


class TestStatsAndBudget:
    def test_generation_time_recorded(self):
        probed = Rule(priority=10, match=Match.build(nw_dst=DST), actions=output(2))
        table = table_of(probed, Rule(priority=0, match=Match.wildcard(), actions=output(1)))
        result = generator().generate(table, probed)
        from repro.openflow.fields import HEADER_BITS

        assert result.generation_time > 0
        assert result.cnf_vars >= HEADER_BITS  # header bits + Tseitin vars
