"""Tests for packet crafting and parsing: protocol round trips,
checksums, and the §5.2 normalization lemmas."""

import pytest

from repro.openflow.fields import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    VLAN_NONE,
    FieldName,
)
from repro.openflow.match import Match
from repro.packets import arp, ethernet, ipv4, transport
from repro.packets.checksum import internet_checksum, verify_checksum
from repro.packets.craft import (
    CraftError,
    craft_packet,
    normalize_abstract_header,
)
from repro.packets.parse import ParseError, parse_packet
from repro.packets.payload import ProbeMetadata


class TestChecksum:
    def test_rfc1071_example(self):
        # Canonical example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_verify_with_embedded_checksum(self):
        data = bytes([0x00, 0x01, 0xF2, 0x03])
        checksum = internet_checksum(data)
        full = data + checksum.to_bytes(2, "big")
        assert verify_checksum(full)


class TestEthernet:
    def test_untagged_roundtrip(self):
        header = ethernet.EthernetHeader(
            dst=0x112233445566, src=0xAABBCCDDEEFF, ethertype=ETHERTYPE_IPV4
        )
        frame = ethernet.encode_ethernet(header, b"payload")
        decoded, rest = ethernet.decode_ethernet(frame)
        assert decoded == header
        assert rest == b"payload"

    def test_vlan_tag_roundtrip(self):
        header = ethernet.EthernetHeader(
            dst=1, src=2, ethertype=ETHERTYPE_IPV4, vlan=0xF03, vlan_pcp=5
        )
        frame = ethernet.encode_ethernet(header, b"x")
        decoded, rest = ethernet.decode_ethernet(frame)
        assert decoded.vlan == 0xF03
        assert decoded.vlan_pcp == 5
        assert decoded.ethertype == ETHERTYPE_IPV4

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError):
            ethernet.decode_ethernet(b"short")

    def test_mac_to_str(self):
        assert ethernet.mac_to_str(0xAABBCCDDEEFF) == "aa:bb:cc:dd:ee:ff"


class TestIpv4:
    def test_roundtrip_and_checksum(self):
        header = ipv4.Ipv4Header(
            src=0x0A000001, dst=0x0A000002, proto=IPPROTO_TCP, tos=0x2A
        )
        packet = ipv4.encode_ipv4(header, b"data")
        decoded, rest = ipv4.decode_ipv4(packet)
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.proto == IPPROTO_TCP
        assert decoded.tos == 0x2A
        assert rest == b"data"

    def test_corrupted_checksum_rejected(self):
        packet = bytearray(
            ipv4.encode_ipv4(
                ipv4.Ipv4Header(src=1, dst=2, proto=6), b""
            )
        )
        packet[12] ^= 0xFF
        with pytest.raises(ValueError):
            ipv4.decode_ipv4(bytes(packet))

    def test_ip_string_conversions(self):
        assert ipv4.ip_to_str(0x0A000001) == "10.0.0.1"
        assert ipv4.str_to_ip("10.0.0.1") == 0x0A000001
        with pytest.raises(ValueError):
            ipv4.str_to_ip("10.0.0")
        with pytest.raises(ValueError):
            ipv4.str_to_ip("10.0.0.999")


class TestTransport:
    def test_tcp_roundtrip(self):
        segment = transport.encode_tcp(1234, 443, b"hello", 1, 2)
        src, dst, payload = transport.decode_tcp(segment)
        assert (src, dst, payload) == (1234, 443, b"hello")

    def test_udp_roundtrip(self):
        datagram = transport.encode_udp(53, 5353, b"query", 1, 2)
        src, dst, payload = transport.decode_udp(datagram)
        assert (src, dst, payload) == (53, 5353, b"query")

    def test_icmp_roundtrip(self):
        message = transport.encode_icmp(8, 0, b"ping")
        icmp_type, icmp_code, payload = transport.decode_icmp(message)
        assert (icmp_type, icmp_code, payload) == (8, 0, b"ping")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            transport.decode_tcp(b"abc")
        with pytest.raises(ValueError):
            transport.decode_udp(b"abc")
        with pytest.raises(ValueError):
            transport.decode_icmp(b"abc")


class TestArp:
    def test_roundtrip(self):
        packet = arp.ArpPacket(
            opcode=arp.OP_REQUEST,
            sender_mac=0xAABBCCDDEEFF,
            sender_ip=0x0A000001,
            target_mac=0,
            target_ip=0x0A000002,
        )
        decoded, rest = arp.decode_arp(arp.encode_arp(packet) + b"tail")
        assert decoded == packet
        assert rest == b"tail"


class TestCraftParseRoundtrip:
    def full_header(self, proto):
        return {
            FieldName.IN_PORT: 0,
            FieldName.DL_SRC: 0x020000000001,
            FieldName.DL_DST: 0x020000000002,
            FieldName.DL_TYPE: ETHERTYPE_IPV4,
            FieldName.DL_VLAN: 0xF03,
            FieldName.DL_VLAN_PCP: 0,
            FieldName.NW_SRC: 0x0A000001,
            FieldName.NW_DST: 0x0A000002,
            FieldName.NW_PROTO: proto,
            FieldName.NW_TOS: 0x15,
            FieldName.TP_SRC: 1234,
            FieldName.TP_DST: 80,
        }

    @pytest.mark.parametrize("proto", [IPPROTO_TCP, IPPROTO_UDP, IPPROTO_ICMP])
    def test_ipv4_roundtrip(self, proto):
        header = self.full_header(proto)
        if proto == IPPROTO_ICMP:
            header[FieldName.TP_SRC] = 8
            header[FieldName.TP_DST] = 0
        raw = craft_packet(header, b"meta")
        values, payload = parse_packet(raw, in_port=7)
        assert payload == b"meta"
        assert values[FieldName.IN_PORT] == 7
        for name in (
            FieldName.DL_SRC,
            FieldName.DL_DST,
            FieldName.DL_VLAN,
            FieldName.NW_SRC,
            FieldName.NW_DST,
            FieldName.NW_PROTO,
            FieldName.NW_TOS,
            FieldName.TP_SRC,
            FieldName.TP_DST,
        ):
            assert values[name] == header[name], name

    def test_untagged_when_vlan_none(self):
        header = self.full_header(IPPROTO_TCP)
        header[FieldName.DL_VLAN] = VLAN_NONE
        raw = craft_packet(header)
        values, _ = parse_packet(raw)
        assert values[FieldName.DL_VLAN] == VLAN_NONE

    def test_arp_roundtrip(self):
        header = {
            FieldName.DL_SRC: 1,
            FieldName.DL_DST: 2,
            FieldName.DL_TYPE: ETHERTYPE_ARP,
            FieldName.DL_VLAN: VLAN_NONE,
            FieldName.NW_SRC: 0x0A000001,
            FieldName.NW_DST: 0x0A000002,
        }
        raw = craft_packet(header, b"p")
        values, payload = parse_packet(raw)
        assert values[FieldName.NW_SRC] == 0x0A000001
        assert values[FieldName.NW_DST] == 0x0A000002
        assert payload == b"p"

    def test_uncraftable_ethertype(self):
        with pytest.raises(CraftError):
            craft_packet({FieldName.DL_TYPE: 0x1234})

    def test_uncraftable_proto(self):
        header = self.full_header(99)
        with pytest.raises(CraftError):
            craft_packet(header)

    def test_parse_garbage(self):
        with pytest.raises(ParseError):
            parse_packet(b"\x00" * 5)


class TestNormalization:
    def test_invalid_dl_type_replaced_with_valid(self):
        values = {FieldName.DL_TYPE: 0x1234}
        normalized = normalize_abstract_header(values, [])
        assert normalized[FieldName.DL_TYPE] in (ETHERTYPE_IPV4, ETHERTYPE_ARP)

    def test_substitution_preserves_matches(self):
        # §5.2 lemma: swapping an invalid value for the spare one must
        # not change Matches(probe, R) for any rule match R.
        matches = [
            Match.build(dl_type=ETHERTYPE_IPV4, nw_src=1),
            Match.build(nw_dst=2),
            Match.wildcard(),
        ]
        values = {FieldName.DL_TYPE: 0x9999, FieldName.NW_SRC: 1}
        before = [m.matches(values) for m in matches]
        normalized = normalize_abstract_header(values, matches)
        after = [m.matches(normalized) for m in matches]
        # dl_type was invalid: no rule can exact-match it, so results on
        # rules that matched before must be preserved.
        assert before == after

    def test_pinned_domain_unsatisfiable(self):
        # Every valid dl_type is used by some rule with a different
        # match result than the invalid original: no safe substitute.
        matches = [
            Match.build(dl_type=ETHERTYPE_IPV4),
            Match.build(dl_type=ETHERTYPE_ARP),
        ]
        values = {FieldName.DL_TYPE: 0x9999}
        with pytest.raises(CraftError):
            normalize_abstract_header(values, matches)

    def test_conditionally_excluded_fields_zeroed(self):
        values = {
            FieldName.DL_TYPE: ETHERTYPE_ARP,
            FieldName.NW_PROTO: IPPROTO_TCP,
            FieldName.NW_TOS: 7,
            FieldName.TP_SRC: 80,
        }
        normalized = normalize_abstract_header(values, [])
        # ARP has no nw_proto/nw_tos/tp_* in our model.
        assert normalized[FieldName.NW_PROTO] == 0
        assert normalized[FieldName.NW_TOS] == 0
        assert normalized[FieldName.TP_SRC] == 0

    def test_transport_ports_zeroed_for_bad_proto(self):
        values = {
            FieldName.DL_TYPE: ETHERTYPE_IPV4,
            FieldName.NW_PROTO: IPPROTO_TCP,
            FieldName.TP_SRC: 80,
        }
        normalized = normalize_abstract_header(values, [])
        assert normalized[FieldName.TP_SRC] == 80  # TCP keeps its ports
        values[FieldName.NW_PROTO] = 99
        normalized = normalize_abstract_header(
            values, [Match.build(nw_proto=IPPROTO_UDP)]
        )
        # proto fixed to a valid value that preserves the (non-)match;
        # ICMP/TCP both avoid matching the UDP rule.
        assert normalized[FieldName.NW_PROTO] in (IPPROTO_TCP, IPPROTO_ICMP)

    def test_normalized_header_is_craftable(self):
        values = {FieldName.DL_TYPE: 0xDEAD, FieldName.NW_PROTO: 0xFE}
        normalized = normalize_abstract_header(values, [])
        raw = craft_packet(normalized)
        parsed, _ = parse_packet(raw)
        assert parsed[FieldName.DL_TYPE] == normalized[FieldName.DL_TYPE]


class TestProbeMetadata:
    def test_roundtrip(self):
        meta = ProbeMetadata(
            switch_id=7, rule_cookie=123456789, nonce=42, expected_drop=True
        )
        decoded = ProbeMetadata.decode(meta.encode())
        assert decoded == meta

    def test_non_probe_payload(self):
        assert ProbeMetadata.decode(b"not a probe payload....") is None
        assert ProbeMetadata.decode(b"") is None

    def test_survives_packet_roundtrip(self):
        meta = ProbeMetadata(switch_id=1, rule_cookie=2, nonce=3)
        header = {
            FieldName.DL_TYPE: ETHERTYPE_IPV4,
            FieldName.NW_PROTO: IPPROTO_UDP,
        }
        raw = craft_packet(header, meta.encode())
        _, payload = parse_packet(raw)
        assert ProbeMetadata.decode(payload) == meta


class TestIcmpTransportNarrowing:
    """OF 1.0 maps ICMP type/code onto tp_src/tp_dst: one wire byte."""

    def _icmp_header(self, tp_src=0, tp_dst=0):
        return {
            FieldName.DL_TYPE: ETHERTYPE_IPV4,
            FieldName.NW_PROTO: 1,  # ICMP
            FieldName.NW_SRC: 0x0A000001,
            FieldName.NW_DST: 0x0A000002,
            FieldName.TP_SRC: tp_src,
            FieldName.TP_DST: tp_dst,
        }

    def test_wide_tp_values_are_substituted(self):
        normalized = normalize_abstract_header(
            self._icmp_header(tp_src=0x1234, tp_dst=0x1F90), []
        )
        assert normalized[FieldName.TP_SRC] <= 0xFF
        assert normalized[FieldName.TP_DST] <= 0xFF

    def test_normalized_header_roundtrips(self):
        normalized = normalize_abstract_header(
            self._icmp_header(tp_src=0x1234, tp_dst=0x1F90), []
        )
        packet = craft_packet(normalized)
        values, _payload = parse_packet(packet, in_port=0)
        from repro.packets.craft import wire_visible_items

        assert wire_visible_items(values) == wire_visible_items(normalized)

    def test_substitution_preserves_matches(self):
        match = Match.build(tp_dst=0x40)
        normalized = normalize_abstract_header(
            self._icmp_header(tp_dst=0x1F90), [match]
        )
        # 0x1F90 does not match tp_dst=0x40; the substitute must not
        # start matching it.
        assert not match.matches(normalized)

    def test_pinned_wide_value_is_uncraftable(self):
        match = Match.build(tp_dst=0x1F90)
        with pytest.raises(CraftError):
            normalize_abstract_header(
                self._icmp_header(tp_dst=0x1F90), [match]
            )

    def test_wire_visible_items_mask_icmp_tp(self):
        from repro.packets.craft import wire_visible_items

        items = dict(wire_visible_items(self._icmp_header(tp_dst=0x1F90)))
        assert items[FieldName.TP_DST] == 0x90

    def test_tcp_keeps_full_width(self):
        header = self._icmp_header(tp_dst=0x1F90)
        header[FieldName.NW_PROTO] = 6  # TCP
        normalized = normalize_abstract_header(header, [])
        assert normalized[FieldName.TP_DST] == 0x1F90
