"""OpenFlow actions and rule outcomes.

The paper's constraint framework (§3.4) treats every rule as having a
*forwarding set* ``F`` plus per-port rewrites:

* drop rules: ``F = {}``,
* unicast: ``|F| = 1``,
* multicast/broadcast: the packet goes to *all* ports in ``F``,
* ECMP: the packet goes to *one, unknown* port from ``F``.

We model this directly.  An :class:`ActionList` is an ordered list of
:class:`SetField` rewrites and :class:`Forward` outputs (rewrites apply to
all subsequent outputs, as in OpenFlow 1.0), optionally wrapped in an
:class:`EcmpGroup`.  The normalized view — forwarding set, per-port
rewrites, ECMP flag — is what the constraint compiler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.openflow.fields import HEADER, FieldName

#: Pseudo-port used for "send to controller" (OFPP_CONTROLLER).
CONTROLLER_PORT = 0xFFFD


class OutcomeKind:
    """Symbolic names for rule-outcome categories."""

    DROP = "drop"
    UNICAST = "unicast"
    MULTICAST = "multicast"
    ECMP = "ecmp"


@dataclass(frozen=True)
class Action:
    """Marker base class for actions."""


@dataclass(frozen=True)
class SetField(Action):
    """Rewrite one header field to a fixed value before later outputs."""

    field_name: FieldName
    value: int

    def __post_init__(self) -> None:
        fld = HEADER.field(self.field_name)
        if not fld.contains(self.value):
            raise ValueError(
                f"SetField {self.field_name}={self.value:#x} exceeds "
                f"width {fld.width}"
            )


@dataclass(frozen=True)
class Forward(Action):
    """Output the (possibly rewritten) packet on a port."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"negative port: {self.port}")


@dataclass(frozen=True)
class Drop(Action):
    """Explicit drop marker (equivalent to an empty action list)."""


@dataclass(frozen=True)
class Multicast(Action):
    """Convenience action: output to several ports with shared rewrites."""

    ports: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.ports)) != len(self.ports):
            raise ValueError(f"duplicate ports in multicast: {self.ports}")


@dataclass(frozen=True)
class EcmpGroup(Action):
    """Equal-cost multipath: the switch picks one port from the set.

    Per-port rewrites are supported via ``rewrites``: a mapping from port
    to the rewrites applied when that port is selected.
    """

    ports: tuple[int, ...]
    rewrites: tuple[tuple[int, tuple[SetField, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("ECMP group needs at least one port")
        if len(set(self.ports)) != len(self.ports):
            raise ValueError(f"duplicate ports in ECMP group: {self.ports}")
        for port, _ in self.rewrites:
            if port not in self.ports:
                raise ValueError(f"rewrite for port {port} not in group")


@dataclass(frozen=True)
class PortOutcome:
    """What a rule does toward one output port.

    Attributes:
        port: the output port.
        rewrites: field -> value rewrites in effect when the packet is
            emitted on this port.
    """

    port: int
    rewrites: tuple[tuple[FieldName, int], ...] = ()

    def rewrite_map(self) -> dict[FieldName, int]:
        """The rewrites as a dict."""
        return dict(self.rewrites)


class ActionList:
    """An ordered OpenFlow 1.0 action list, normalized for analysis.

    Args:
        actions: sequence of :class:`Action` objects.  ``SetField``
            rewrites accumulate and apply to every later ``Forward`` /
            ``Multicast``.  An ``EcmpGroup`` must be the only forwarding
            action if present.
    """

    __slots__ = ("actions", "_port_outcomes", "_is_ecmp")

    def __init__(self, actions: Sequence[Action] = ()) -> None:
        self.actions: tuple[Action, ...] = tuple(actions)
        self._port_outcomes, self._is_ecmp = self._normalize(self.actions)

    @staticmethod
    def _normalize(
        actions: tuple[Action, ...],
    ) -> tuple[tuple[PortOutcome, ...], bool]:
        """Flatten the action list into per-port outcomes."""
        ecmp_groups = [a for a in actions if isinstance(a, EcmpGroup)]
        if ecmp_groups:
            others = [
                a
                for a in actions
                if isinstance(a, (Forward, Multicast, Drop))
            ]
            if len(ecmp_groups) > 1 or others:
                raise ValueError(
                    "an EcmpGroup must be the only forwarding action"
                )
            group = ecmp_groups[0]
            pending: dict[FieldName, int] = {}
            for action in actions:
                if isinstance(action, SetField):
                    pending[action.field_name] = action.value
            per_port_extra = {port: rws for port, rws in group.rewrites}
            outcomes = []
            for port in group.ports:
                rewrites = dict(pending)
                for sf in per_port_extra.get(port, ()):
                    rewrites[sf.field_name] = sf.value
                outcomes.append(
                    PortOutcome(
                        port=port, rewrites=tuple(sorted(rewrites.items()))
                    )
                )
            return tuple(outcomes), True

        outcomes = []
        seen_ports: set[int] = set()
        pending = {}
        for action in actions:
            if isinstance(action, SetField):
                pending[action.field_name] = action.value
            elif isinstance(action, Forward):
                if action.port in seen_ports:
                    raise ValueError(f"duplicate output port {action.port}")
                seen_ports.add(action.port)
                outcomes.append(
                    PortOutcome(
                        port=action.port,
                        rewrites=tuple(sorted(pending.items())),
                    )
                )
            elif isinstance(action, Multicast):
                for port in action.ports:
                    if port in seen_ports:
                        raise ValueError(f"duplicate output port {port}")
                    seen_ports.add(port)
                    outcomes.append(
                        PortOutcome(
                            port=port,
                            rewrites=tuple(sorted(pending.items())),
                        )
                    )
            elif isinstance(action, Drop):
                pass  # explicit drop: contributes no outputs
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown action {action!r}")
        return tuple(outcomes), False

    # ----- normalized views -------------------------------------------

    @property
    def is_ecmp(self) -> bool:
        """True when the packet goes to exactly one port of a set."""
        return self._is_ecmp

    @property
    def port_outcomes(self) -> tuple[PortOutcome, ...]:
        """Per-port outcomes (port + rewrites in effect on that port)."""
        return self._port_outcomes

    def forwarding_set(self) -> frozenset[int]:
        """The paper's ``F``: set of ports the rule may emit on."""
        return frozenset(po.port for po in self._port_outcomes)

    def outcome_kind(self) -> str:
        """Categorize per §3.4: drop / unicast / multicast / ecmp."""
        n = len(self._port_outcomes)
        if n == 0:
            return OutcomeKind.DROP
        if self._is_ecmp:
            return OutcomeKind.ECMP
        if n == 1:
            return OutcomeKind.UNICAST
        return OutcomeKind.MULTICAST

    def rewrites_on_port(self, port: int) -> dict[FieldName, int]:
        """Rewrites in effect for packets emitted on ``port``."""
        for po in self._port_outcomes:
            if po.port == port:
                return po.rewrite_map()
        raise KeyError(f"port {port} not in forwarding set")

    def apply(
        self, header_values: Mapping[FieldName, int], port: int
    ) -> dict[FieldName, int]:
        """Header values as observed on ``port`` after this rule runs."""
        rewritten = dict(header_values)
        rewritten.update(self.rewrites_on_port(port))
        return rewritten

    def rewritten_fields(self) -> set[FieldName]:
        """All fields any port's outcome may rewrite."""
        fields: set[FieldName] = set()
        for po in self._port_outcomes:
            fields.update(po.rewrite_map())
        return fields

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActionList):
            return NotImplemented
        return self.actions == other.actions

    def __hash__(self) -> int:
        return hash(self.actions)

    def __repr__(self) -> str:
        kind = self.outcome_kind()
        ports = sorted(self.forwarding_set())
        return f"ActionList({kind}, ports={ports})"


def drop() -> ActionList:
    """An action list that drops the packet."""
    return ActionList((Drop(),))


def output(port: int, **rewrites: int) -> ActionList:
    """Unicast to ``port`` with optional field rewrites.

    Example: ``output(2, nw_tos=0x10)``.
    """
    actions: list[Action] = [
        SetField(FieldName(name), value) for name, value in rewrites.items()
    ]
    actions.append(Forward(port))
    return ActionList(actions)


def multicast(ports: Sequence[int], **rewrites: int) -> ActionList:
    """Multicast to ``ports`` with shared rewrites."""
    actions: list[Action] = [
        SetField(FieldName(name), value) for name, value in rewrites.items()
    ]
    actions.append(Multicast(tuple(ports)))
    return ActionList(actions)


def ecmp(ports: Sequence[int], **rewrites: int) -> ActionList:
    """ECMP across ``ports`` with shared rewrites."""
    actions: list[Action] = [
        SetField(FieldName(name), value) for name, value in rewrites.items()
    ]
    actions.append(EcmpGroup(tuple(ports)))
    return ActionList(actions)
