"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series next to the paper's reference
numbers.  Because the substrate is a simulator (not the authors'
hardware testbed), the *shapes* — who wins, by what factor, where the
crossovers are — are the reproduction target, not absolute values.

Environment knobs:

* ``REPRO_BENCH_SCALE``: float multiplier on workload sizes (default 1.0
  uses CI-friendly sizes; the full paper-scale run is noted per bench).
* ``REPRO_BENCH_SEED``: base RNG seed (default 2015).
"""

import os

import pytest


def bench_scale() -> float:
    """Workload scale factor from the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seed() -> int:
    """Base seed from the environment."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2015"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
