"""Topology partitioning and cross-shard gossip bookkeeping.

A sharded fleet run (``ScenarioSpec(workers=N)``) splits the switch set
into *shards*, one worker process per shard.  This module holds the
pieces that are pure bookkeeping — no processes, no pipes — so they can
be unit-tested deterministically:

* :func:`plan_shards` cuts the topology under a pluggable policy
  (``round_robin`` spreads switches evenly with no regard for links;
  ``locality`` keeps connected neighborhoods together to minimize
  cross-shard links).  The resulting :class:`ShardPlan` knows every
  *cut edge* — a link whose endpoints live in different shards — which
  is what decides whether a run needs conservative-time barriers at
  all.
* :class:`GossipDirectory` is the coordinator-side fingerprint
  directory for cross-shard context dedup: shards advertise
  ``(generator key, table fingerprint)`` digests at each barrier, and
  when two shards advertise the same digest the directory has the
  richer one ship its solved probe cache to the other (shard-local
  solving, cross-shard cache-entry shipping — never a shared solver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Hashable, Iterable, Mapping

import networkx as nx

#: A cross-shard context identity: ``(generator_key(...), table
#: fingerprint)``.  Two contexts with equal digests were built from
#: value-identical generator configurations and hold tables with the
#: same rule multiset — the same test the in-process
#: ``SharedContextRegistry`` applies before sharing, minus the exact
#: rule-sequence check, which the importer re-verifies on delivery.
Digest = tuple[Any, str]

#: A gossip payload: the exporter's exact rule-signature sequence (the
#: importer must match it before adopting anything) plus the exported
#: ``(priority, match, result)`` cache entries.
GossipPayload = tuple[tuple[Any, ...], list[Any]]

ShardPolicy = Callable[[nx.Graph, int], list[list[Hashable]]]


def _sorted_nodes(topology: nx.Graph) -> list[Hashable]:
    return sorted(topology.nodes, key=repr)


def _round_robin(topology: nx.Graph, workers: int) -> list[list[Hashable]]:
    """Deal sorted switches round-robin: balanced, link-oblivious."""
    nodes = _sorted_nodes(topology)
    return [nodes[i::workers] for i in range(workers)]


def _bfs_order(topology: nx.Graph) -> list[Hashable]:
    """All nodes, BFS per connected component, fully deterministic.

    Components are visited in order of their smallest-``repr`` node and
    neighbors are expanded in sorted order, so the walk depends only on
    the graph — not on insertion order.
    """
    order: list[Hashable] = []
    seen: set[Hashable] = set()
    for start in _sorted_nodes(topology):
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for neighbor in sorted(topology.neighbors(node), key=repr):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return order


def _locality(topology: nx.Graph, workers: int) -> list[list[Hashable]]:
    """Chunk a component-wise BFS order into contiguous slices.

    Neighbors end up in the same chunk unless the chunk boundary lands
    on them, so disconnected islands (and long chains) shard with zero
    or few cut links.
    """
    order = _bfs_order(topology)
    base, extra = divmod(len(order), workers)
    shards: list[list[Hashable]] = []
    at = 0
    for shard in range(workers):
        size = base + (1 if shard < extra else 0)
        shards.append(order[at : at + size])
        at += size
    return shards


SHARD_POLICIES: dict[str, ShardPolicy] = {
    "round_robin": _round_robin,
    "locality": _locality,
}

DEFAULT_SHARD_POLICY = "locality"


@dataclass(frozen=True)
class ShardPlan:
    """An immutable assignment of every switch to one shard."""

    policy: str
    shards: tuple[tuple[Hashable, ...], ...]
    cut_edges: tuple[tuple[Hashable, Hashable], ...]

    @property
    def workers(self) -> int:
        return len(self.shards)

    @property
    def is_pure(self) -> bool:
        """No link crosses a shard boundary: runs barrier-free."""
        return not self.cut_edges

    @cached_property
    def _owners(self) -> dict[Hashable, int]:
        return {
            node: shard
            for shard, nodes in enumerate(self.shards)
            for node in nodes
        }

    def owner(self, node: Hashable) -> int:
        """The shard index owning ``node`` (KeyError when unknown)."""
        return self._owners[node]


def plan_shards(
    topology: nx.Graph, workers: int, policy: str = DEFAULT_SHARD_POLICY
) -> ShardPlan:
    """Partition ``topology`` into at most ``workers`` shards.

    ``workers`` is clamped to the node count (an empty shard would be a
    worker process with nothing to simulate), and the cut-edge set is
    derived here once so callers never re-scan the topology.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if policy not in SHARD_POLICIES:
        known = ", ".join(sorted(SHARD_POLICIES))
        raise ValueError(f"unknown shard policy {policy!r} (have: {known})")
    workers = min(workers, topology.number_of_nodes())
    shards = tuple(
        tuple(nodes) for nodes in SHARD_POLICIES[policy](topology, workers)
    )
    owners = {
        node: shard for shard, nodes in enumerate(shards) for node in nodes
    }
    cut = sorted(
        (
            tuple(sorted((u, v), key=repr))
            for u, v in topology.edges
            if owners[u] != owners[v]
        ),
        key=repr,
    )
    return ShardPlan(
        policy=policy,
        shards=shards,
        cut_edges=tuple(cut),  # type: ignore[arg-type]
    )


def spec_nodes(spec: object) -> list[Hashable]:
    """The topology nodes a failure spec explicitly references.

    Used to classify injections: a spec whose nodes span shards must be
    announced across the cut (the announcing shard fires it locally and
    ships an envelope so the peer applies its half at the next
    barrier).  Specs with no explicit nodes (random victim) stay
    shard-local by construction.
    """
    nodes: list[Hashable] = []
    for attr in ("node", "u", "v", "toward"):
        value = getattr(spec, attr, None)
        if value is not None:
            nodes.append(value)
    return nodes


@dataclass
class GossipDirectory:
    """Coordinator-side fingerprint directory (who holds which table).

    The two-window pipeline, all piggybacked on barrier traffic:

    1. each worker advertises ``{digest: fresh-cache size}`` in its
       window payload (:meth:`publish`);
    2. when a digest has two or more holders the directory asks the
       richest holder to export (:meth:`export_requests`, delivered in
       the next run command);
    3. the exporter ships ``(rule signatures, cache entries)`` in its
       following window payload (:meth:`receive_exports`);
    4. every *other* holder receives the payload with its next run
       command (:meth:`imports_for`), verifies the signature sequence
       against its current table, and adopts the entries.

    ``delivered`` keeps each (digest, shard) pair from being shipped
    twice; exporters are marked delivered up front so a shard never
    receives its own entries back.
    """

    holders: dict[Digest, dict[int, int]] = field(default_factory=dict)
    payloads: dict[Digest, GossipPayload] = field(default_factory=dict)
    delivered: set[tuple[Digest, int]] = field(default_factory=set)
    requested: set[Digest] = field(default_factory=set)
    digests_published: int = 0
    entries_shipped: int = 0

    def publish(self, shard: int, digests: Mapping[Digest, int]) -> None:
        """Record one worker's advertisement for this barrier window."""
        for digest, count in digests.items():
            self.digests_published += 1
            self.holders.setdefault(digest, {})[shard] = count

    def receive_exports(
        self, shard: int, exports: Mapping[Digest, GossipPayload]
    ) -> None:
        """Bank payloads a worker shipped in its window reply."""
        for digest, payload in exports.items():
            self.requested.discard(digest)
            if digest not in self.payloads:
                self.payloads[digest] = payload
                self.entries_shipped += len(payload[1])
            self.delivered.add((digest, shard))

    def export_requests(self) -> dict[int, list[Digest]]:
        """Digests worth shipping, keyed by the shard asked to export.

        A digest qualifies once two shards hold it and no payload or
        outstanding request exists; the richest holder (most fresh
        cache entries, lowest shard id on ties) pays the export.
        """
        requests: dict[int, list[Digest]] = {}
        for digest in sorted(self.holders, key=repr):
            holders = self.holders[digest]
            if (
                len(holders) < 2
                or digest in self.payloads
                or digest in self.requested
            ):
                continue
            exporter = min(holders, key=lambda s: (-holders[s], s))
            requests.setdefault(exporter, []).append(digest)
            self.requested.add(digest)
        return requests

    def imports_for(self, shard: int) -> dict[Digest, GossipPayload]:
        """Banked payloads this shard advertised for but never got."""
        out: dict[Digest, GossipPayload] = {}
        for digest in sorted(self.payloads, key=repr):
            if shard not in self.holders.get(digest, {}):
                continue
            if (digest, shard) in self.delivered:
                continue
            out[digest] = self.payloads[digest]
            self.delivered.add((digest, shard))
        return out


def iter_cut_specs(
    specs: Iterable[object], plan: ShardPlan
) -> list[tuple[int, object, set[int]]]:
    """``(index, spec, shards)`` for specs whose nodes span shards.

    Convenience for tests and the coordinator's bookkeeping; workers
    classify their own specs the same way.
    """
    out: list[tuple[int, object, set[int]]] = []
    for index, spec in enumerate(specs):
        owners = {plan.owner(node) for node in spec_nodes(spec)}
        if len(owners) > 1:
            out.append((index, spec, owners))
    return out
