"""Virtual clock used by the simulator.

Time is a float measured in seconds.  The clock only moves forward and is
advanced exclusively by the simulation kernel when it dispatches events.
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual clock.

    The clock starts at zero.  Only the simulation kernel should call
    :meth:`advance`; everything else treats the clock as read-only.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, to: float) -> None:
        """Move the clock forward to ``to`` seconds.

        Raises:
            ValueError: if ``to`` is earlier than the current time.
        """
        if to < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={to}"
            )
        self._now = to

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
