"""Property-based tests: probe generation against random flow tables.

The central invariant (the paper's Table 1, checked by simulation): for
ANY flow table, if the generator claims a probe exists then the probe
(a) is processed by the probed rule, (b) yields observably different
outcomes with and without the rule, and (c) matches the catching rule.
Completeness is spot-checked too: when the generator says UNSAT, no
header in a small exhaustive neighbourhood may satisfy Table 1.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.probegen import ProbeGenerator, UnmonitorableReason, verify_probe
from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule, RuleOutcome
from repro.openflow.table import FlowTable

CATCH = Match.build(dl_vlan=0xF03)

# Small discrete universes keep exhaustive cross-checks feasible.
SRC_VALUES = [0x0A000001, 0x0A000002, 0x0A000003]
DST_VALUES = [0x14000001, 0x14000002]
PORTS = [1, 2, 3]


@st.composite
def rule_strategy(draw, priority):
    match_kwargs = {}
    if draw(st.booleans()):
        match_kwargs["nw_src"] = draw(st.sampled_from(SRC_VALUES))
    if draw(st.booleans()):
        match_kwargs["nw_dst"] = draw(st.sampled_from(DST_VALUES))
    kind = draw(st.sampled_from(["unicast", "drop", "rewrite", "multicast", "ecmp"]))
    if kind == "unicast":
        actions = output(draw(st.sampled_from(PORTS)))
    elif kind == "drop":
        actions = drop()
    elif kind == "rewrite":
        actions = output(
            draw(st.sampled_from(PORTS)), nw_tos=draw(st.integers(0, 3))
        )
    elif kind == "multicast":
        ports = draw(
            st.lists(st.sampled_from(PORTS), min_size=2, max_size=3, unique=True)
        )
        actions = multicast(ports)
    else:
        ports = draw(
            st.lists(st.sampled_from(PORTS), min_size=2, max_size=3, unique=True)
        )
        actions = ecmp(ports)
    return Rule(priority=priority, match=Match.build(**match_kwargs), actions=actions)


@st.composite
def table_strategy(draw):
    num_rules = draw(st.integers(2, 6))
    priorities = draw(
        st.lists(
            st.integers(1, 30), min_size=num_rules, max_size=num_rules, unique=True
        )
    )
    rules = [draw(rule_strategy(priority)) for priority in priorities]
    table = FlowTable(check_overlap=False)
    for rule in rules:
        table.install(rule)
    probed = draw(st.sampled_from(rules))
    return table, probed


@settings(max_examples=120, deadline=None)
@given(table_strategy())
def test_generated_probes_satisfy_table1(table_and_rule):
    """Soundness: every generated probe passes the simulation check."""
    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if result.ok:
        valid, why = verify_probe(table, probed, result.header, CATCH)
        assert valid, why
        # The raw packet must parse back to the same header fields that
        # matter (craft/parse round trip on a generated probe).
        from repro.packets.parse import parse_packet

        values, _ = parse_packet(result.packet, result.header[FieldName.IN_PORT])
        for name in (FieldName.NW_SRC, FieldName.NW_DST, FieldName.DL_VLAN):
            assert values[name] == result.header[name]


def _exhaustive_probe_exists(table, probed):
    """Brute-force Table 1 over the small header universe."""
    for src, dst, vlan, tos in itertools.product(
        SRC_VALUES + [0x0B000000],
        DST_VALUES + [0x15000000],
        [0xF03],
        range(4),
    ):
        header = {
            FieldName.NW_SRC: src,
            FieldName.NW_DST: dst,
            FieldName.DL_VLAN: vlan,
            FieldName.NW_TOS: tos,
        }
        hit = table.lookup(header)
        if hit is None or hit.key() != probed.key():
            continue
        if not CATCH.matches(header):
            continue
        without = table.copy()
        without.remove(probed)
        miss = without.lookup(header)
        present = RuleOutcome.from_rule(probed, header)
        absent = (
            RuleOutcome.from_rule(miss, header)
            if miss is not None
            else RuleOutcome.dropped()
        )
        if present.distinguishable_from(absent):
            return True
    return False


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_unsat_verdicts_are_complete(table_and_rule):
    """Completeness: UNSAT means no probe exists in the small universe.

    (The converse of soundness; restricted to the discrete universe the
    strategies draw from, where exhaustive checking is feasible.)
    """
    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if not result.ok and result.reason is UnmonitorableReason.UNSATISFIABLE:
        assert not _exhaustive_probe_exists(table, probed)


@settings(max_examples=60, deadline=None)
@given(table_strategy())
def test_probe_header_is_wire_valid(table_and_rule):
    """Every generated probe survives craft -> parse without error."""
    from repro.packets.craft import craft_packet
    from repro.packets.parse import parse_packet

    table, probed = table_and_rule
    generator = ProbeGenerator(catch_match=CATCH)
    result = generator.generate(table, probed)
    if result.ok:
        raw = craft_packet(result.header, b"payload123456789")
        values, payload = parse_packet(raw)
        assert payload == b"payload123456789"
