"""Tests for the persistent SAT context (repro.sat.incremental).

Covers the three incremental facilities — assumption-based solving,
clause groups with retraction, lemma/heuristic retention across calls —
plus variable recycling and database compaction, cross-checked against
the brute-force reference solver on random formulas.
"""

import random

import pytest

from repro.sat.brute import brute_force_solve
from repro.sat.cnf import CNF
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import SatSolver


def random_cnf(rng, num_vars, num_clauses, width=3):
    cnf = CNF(num_vars)
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        variables = rng.sample(range(1, num_vars + 1), size)
        cnf.add_clause(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return cnf


class TestAssumptions:
    def test_assumptions_do_not_stick(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver.solve([-1]).satisfiable is True
        assert solver.solve([-2]).satisfiable is True
        # Jointly impossible, but neither call poisoned the other.
        assert solver.solve([-1, -2]).satisfiable is False
        assert solver.solve([]).satisfiable is True

    def test_unsat_under_assumptions_is_not_permanent(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve([-1, -3]).satisfiable is False
        result = solver.solve([])
        assert result.satisfiable is True

    def test_conflicting_assumptions(self):
        solver = IncrementalSolver(num_vars=1)
        assert solver.solve([1, -1]).satisfiable is False
        assert solver.solve([1]).satisfiable is True

    def test_model_respects_assumptions(self):
        solver = IncrementalSolver(num_vars=4)
        solver.add_clause([1, 2, 3, 4])
        result = solver.solve([-1, -2, -3])
        assert result.satisfiable is True
        assert result.assignment[4] is True
        assert result.assignment[1] is False

    def test_matches_brute_force_under_random_assumptions(self):
        rng = random.Random(20150)
        for trial in range(40):
            num_vars = rng.randint(3, 8)
            cnf = random_cnf(rng, num_vars, rng.randint(2, 18))
            solver = IncrementalSolver(num_vars=num_vars)
            for clause in cnf.clauses():
                solver.add_clause(clause)
            for _ in range(4):
                k = rng.randint(0, num_vars)
                assumed = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, num_vars + 1), k)
                ]
                augmented = cnf.copy()
                for lit in assumed:
                    augmented.add_unit(lit)
                expected = brute_force_solve(augmented) is not None
                got = solver.solve(assumed).satisfiable
                assert got == expected, (trial, assumed)


class TestGroups:
    def test_group_binds_only_when_assumed(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        solver.add_clause([-1], group=group)  # x must be false, in-group
        assert solver.solve([1]).satisfiable is True  # group inactive
        assert solver.solve([group, 1]).satisfiable is False
        assert solver.solve([group, -1]).satisfiable is True

    def test_retired_group_never_binds_again(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        solver.add_clause([-1], group=group)
        solver.retire_group(group)
        # Even assuming the dead selector cannot resurrect the clause:
        # its unit -selector contradicts the assumption, nothing more.
        assert solver.solve([1]).satisfiable is True
        assert solver.solve([group]).satisfiable is False  # selector pinned

    def test_add_to_retired_group_rejected(self):
        solver = IncrementalSolver()
        group = solver.new_group()
        solver.retire_group(group)
        with pytest.raises(ValueError):
            solver.add_clause([1], group=group)
        solver.retire_group(group)  # idempotent

    def test_lemmas_from_retired_groups_do_not_leak(self):
        # A sequence of contradictory transient groups must not corrupt
        # the base formula: after each retirement the base stays SAT.
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        for _ in range(10):
            group = solver.new_group()
            solver.add_clause([-1], group=group)
            solver.add_clause([-2], group=group)
            solver.add_clause([3], group=group)
            solver.add_clause([-3], group=group)  # group is self-contradictory
            assert solver.solve([group]).satisfiable is False
            solver.retire_group(group)
            assert solver.solve([]).satisfiable is True

    def test_random_group_churn_matches_brute_force(self):
        rng = random.Random(77)
        base_vars = 6
        base = random_cnf(rng, base_vars, 6)
        solver = IncrementalSolver(num_vars=base_vars)
        for clause in base.clauses():
            solver.add_clause(clause)
        for trial in range(30):
            extra = random_cnf(rng, base_vars, rng.randint(1, 6))
            group = solver.new_group()
            for clause in extra.clauses():
                solver.add_clause(clause, group=group)
            combined = base.copy()
            combined.extend(extra.clauses())
            expected = brute_force_solve(combined) is not None
            assert solver.solve([group]).satisfiable == expected, trial
            solver.retire_group(group)
            assert (
                solver.solve([]).satisfiable
                == (brute_force_solve(base) is not None)
            )


class TestRecyclingAndCompaction:
    def test_group_vars_are_recycled(self):
        solver = IncrementalSolver(num_vars=2)
        group = solver.new_group()
        aux = solver.new_var(group)
        solver.add_clause([1, aux], group=group)
        before = solver.num_vars
        solver.retire_group(group)
        group2 = solver.new_group()  # selector: always fresh
        reused = solver.new_var(group2)
        assert reused == aux
        assert solver.num_vars == before + 1  # only the new selector

    def test_recycled_var_is_unconstrained(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        aux = solver.new_var(group)
        solver.add_clause([aux], group=group)
        solver.add_clause([-1], group=group)
        assert solver.solve([group, 1]).satisfiable is False
        solver.retire_group(group)
        # aux comes back and must be assignable either way.
        fresh = solver.new_var()
        assert fresh == aux
        assert solver.solve([fresh]).satisfiable is True
        assert solver.solve([-fresh]).satisfiable is True

    def test_compaction_preserves_semantics(self):
        rng = random.Random(11)
        base = random_cnf(rng, 6, 10)
        solver = IncrementalSolver(num_vars=6)
        for clause in base.clauses():
            solver.add_clause(clause)
        live = solver.new_group()
        solver.add_clause([1, 2], group=live)
        for _ in range(5):
            dead = solver.new_group()
            solver.add_clause([3, 4], group=dead)
            solver.retire_group(dead)
        before = solver.solve([live]).satisfiable
        solver.compact()
        assert solver.num_dead_clauses == 0
        assert solver.solve([live]).satisfiable == before
        reference = base.copy()
        reference.add_clause([1, 2])
        assert before == (brute_force_solve(reference) is not None)

    def test_auto_compaction_fires(self):
        solver = IncrementalSolver(
            num_vars=2, compaction_floor=10, compaction_ratio=0.5
        )
        solver.add_clause([1, 2])
        for _ in range(20):
            group = solver.new_group()
            solver.add_clause([1], group=group)
            solver.retire_group(group)
        assert solver.stats.compactions >= 1
        assert solver.solve([]).satisfiable is True


class TestLearnedRetention:
    def test_repeated_solves_get_cheaper(self):
        # Pigeonhole-ish hard-ish instance solved twice: the second call
        # must not redo the first call's conflicts from scratch.
        rng = random.Random(5)
        cnf = random_cnf(rng, 12, 50)
        solver = IncrementalSolver(num_vars=12)
        for clause in cnf.clauses():
            solver.add_clause(clause)
        first = solver.solve([])
        second = solver.solve([])
        assert second.satisfiable == first.satisfiable
        assert second.conflicts <= first.conflicts

    def test_incremental_solver_is_reusable_after_sat(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([1, 2])
        assert solver.solve([3]).satisfiable is True
        solver.add_clause([-3])  # new permanent knowledge
        assert solver.solve([3]).satisfiable is False
        assert solver.solve([]).satisfiable is True


class TestCoreSolverIncrementalSurface:
    def test_clause_falsified_by_previous_level0_trail(self):
        """Regression: a clause added after a solve call, all of whose
        literals are already false on the permanent level-0 trail, must
        make the formula UNSAT — not be silently ignored because its
        watches never fire."""
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve([]).satisfiable is True  # pins -1, -2 at level 0
        solver.add_clause([1, 2])
        assert solver.solve([]).satisfiable is False

    def test_clause_reduced_to_unit_by_level0_trail(self):
        solver = IncrementalSolver(num_vars=3)
        solver.add_clause([-1])
        assert solver.solve([]).satisfiable is True
        solver.add_clause([1, 3])  # reduces to unit [3]
        result = solver.solve([])
        assert result.satisfiable is True
        assert result.assignment[3] is True
        assert solver.solve([-3]).satisfiable is False

    def test_clause_satisfied_by_level0_trail_is_redundant(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1])
        assert solver.solve([]).satisfiable is True
        solver.add_clause([1, 2])  # already satisfied forever
        result = solver.solve([-2])
        assert result.satisfiable is True

    def test_compaction_keeps_model_check_disabled(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver._solver.check_models is False
        solver.compact()
        assert solver._solver.check_models is False

    def test_add_clause_after_solve(self):
        solver = SatSolver(CNF(2))
        solver.add_clause([1, 2])
        assert solver.solve().satisfiable is True
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().satisfiable is False

    def test_permanent_contradiction_sticks(self):
        solver = SatSolver(CNF(1))
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().satisfiable is False
        assert solver.solve().satisfiable is False

    def test_no_learning_mode_with_assumptions(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        cnf.add_clause([-2, 3])
        solver = SatSolver(cnf, enable_learning=False)
        assert solver.solve(assumptions=[-1, -3]).satisfiable is False
        assert solver.solve(assumptions=[-1]).satisfiable is True


def random_3sat(rng, num_vars, num_clauses):
    """Exact-3 clauses near the phase transition: conflict-rich."""
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return clauses


class TestWarmCompaction:
    """Compaction keeps lemmas that mention no retired selector."""

    def _churned_solver(self, rng, num_vars=20, clauses=86):
        threes = random_3sat(rng, num_vars, clauses)
        solver = IncrementalSolver(num_vars=num_vars)
        for clause in threes:
            solver.add_clause(clause)
        return threes, solver

    def test_lemmas_survive_compaction(self):
        rng = random.Random(3)
        cnf, solver = self._churned_solver(rng)
        first = solver.solve([])
        assert first.learned_clauses > 0  # the instance must be nontrivial
        # Create retirement garbage to give compaction something to do.
        for _ in range(5):
            group = solver.new_group()
            solver.add_clause([1, 2], group=group)
            solver.retire_group(group)
        solver.compact()
        assert solver.stats.lemmas_retained > 0
        assert solver.solve([]).satisfiable == first.satisfiable

    def test_retired_group_lemmas_are_dropped(self):
        solver = IncrementalSolver(num_vars=6)
        solver.add_clause([1, 2])
        group = solver.new_group()
        # A contradictory group: solving under it learns lemmas that
        # carry the group selector.
        solver.add_clause([3], group=group)
        solver.add_clause([-3, 4], group=group)
        solver.add_clause([-4], group=group)
        assert solver.solve([group]).satisfiable is False
        solver.retire_group(group)
        solver.compact()
        # No kept lemma may mention the retired selector.
        for lemma in solver._kept_lemmas:
            assert all(abs(lit) != group for lit in lemma)
        assert solver.solve([]).satisfiable is True

    def test_warmth_measurably_retained(self):
        # After compaction the solver must not redo all its conflicts.
        rng = random.Random(8)
        measured = 0
        for _ in range(8):
            _cnf, solver = self._churned_solver(rng)
            first = solver.solve([])
            if first.conflicts < 4:
                continue  # too easy to measure warmth on
            solver.compact()
            assert solver.stats.lemmas_retained > 0
            second = solver.solve([])
            assert second.satisfiable == first.satisfiable
            assert second.conflicts <= first.conflicts
            measured += 1
        assert measured > 0

    def test_compaction_matches_brute_force_after_retention(self):
        rng = random.Random(53)
        for trial in range(15):
            base = random_cnf(rng, 7, rng.randint(6, 20))
            solver = IncrementalSolver(num_vars=7)
            for clause in base.clauses():
                solver.add_clause(clause)
            solver.solve([])
            for _ in range(3):
                group = solver.new_group()
                extra = random_cnf(rng, 7, rng.randint(1, 4))
                for clause in extra.clauses():
                    solver.add_clause(clause, group=group)
                solver.solve([group])
                solver.retire_group(group)
            solver.compact()
            expected = brute_force_solve(base) is not None
            assert solver.solve([]).satisfiable == expected, trial


class TestModelCache:
    def test_identical_resolve_is_memoized(self):
        solver = IncrementalSolver(num_vars=4)
        solver.add_clause([1, 2])
        solver.add_clause([-2, 3])
        first = solver.solve([1])
        again = solver.solve([1])
        assert again.satisfiable == first.satisfiable
        assert again.assignment == first.assignment
        assert solver.stats.model_cache_hits == 1
        assert again.conflicts == 0 and again.propagations == 0

    def test_cache_invalidated_by_new_clause(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver.solve([]).satisfiable is True
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve([]).satisfiable is False
        assert solver.stats.model_cache_hits == 0

    def test_cache_respects_assumption_change(self):
        solver = IncrementalSolver(num_vars=2)
        solver.add_clause([1, 2])
        assert solver.solve([-1]).satisfiable is True
        assert solver.solve([-2]).satisfiable is True
        assert solver.solve([-1, -2]).satisfiable is False
        assert solver.stats.model_cache_hits == 0

    def test_cache_invalidated_by_group_retirement(self):
        solver = IncrementalSolver(num_vars=1)
        group = solver.new_group()
        solver.add_clause([1], group=group)
        assert solver.solve([group]).satisfiable is True
        solver.retire_group(group)  # adds the -selector unit
        assert solver.solve([group]).satisfiable is False


class TestClone:
    def test_clone_is_equivalent_and_independent(self):
        rng = random.Random(8)
        cnf = random_cnf(rng, 10, 40)
        solver = IncrementalSolver(num_vars=10)
        for clause in cnf.clauses():
            solver.add_clause(clause)
        group = solver.new_group()
        solver.add_clause([1, 2], group=group)
        first = solver.solve([group])
        dup = solver.clone()
        assert dup.solve([group]).satisfiable == first.satisfiable
        # Diverge the clone; the original must be unaffected.
        dup.add_clause([-1])
        dup.add_clause([-2])
        dup_result = dup.solve([group])
        assert dup_result.satisfiable is False
        assert solver.solve([group]).satisfiable == first.satisfiable

    def test_clone_preserves_group_machinery(self):
        solver = IncrementalSolver(num_vars=2)
        group = solver.new_group()
        aux = solver.new_var(group)
        solver.add_clause([1, aux], group=group)
        dup = solver.clone()
        dup.retire_group(group)
        recycled = dup.new_var()
        assert recycled == aux  # recycling pool carried over
        # The original still has the group live.
        assert solver.solve([group, -1, -aux]).satisfiable is False

    def test_clone_matches_brute_force_after_divergence(self):
        rng = random.Random(12)
        base = random_cnf(rng, 6, 12)
        solver = IncrementalSolver(num_vars=6)
        for clause in base.clauses():
            solver.add_clause(clause)
        solver.solve([])
        dup = solver.clone()
        extra = random_cnf(rng, 6, 5)
        combined = base.copy()
        for clause in extra.clauses():
            dup.add_clause(clause)
            combined.add_clause(clause)
        assert (
            dup.solve([]).satisfiable
            == (brute_force_solve(combined) is not None)
        )
        assert (
            solver.solve([]).satisfiable
            == (brute_force_solve(base) is not None)
        )


class TestBranchBookkeeping:
    def test_no_vsids_mode_still_solves(self):
        # The no-VSIDS path now serves decisions from the zero-activity
        # heap; cross-check against brute force.
        rng = random.Random(77)
        for trial in range(25):
            cnf = random_cnf(rng, rng.randint(3, 8), rng.randint(3, 16))
            got = SatSolver(cnf, enable_vsids=False).solve().satisfiable
            expected = brute_force_solve(cnf) is not None
            assert got == expected, trial

    def test_assigned_counter_stays_consistent(self):
        solver = SatSolver(CNF(4))
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        for _ in range(3):
            result = solver.solve()
            assert result.satisfiable is True
            # Post-solve the trail holds only level-0 facts.
            assert solver._num_assigned == len(solver.trail)

    def test_model_cache_does_not_survive_compaction_collisions(self):
        # Regression: compact() rebuilds the core solver, restarting
        # its generation counter; clauses added afterwards could raise
        # it back to exactly the memoized generation, resurrecting a
        # stale model that violates the new clauses.
        solver = IncrementalSolver(num_vars=2)
        for _ in range(16):
            solver.add_clause([1, 2])
        group = solver.new_group()
        solver.add_clause([1, 2], group=group)
        first = solver.solve([group])
        assert first.satisfiable is True
        true_var = next(
            var for var, value in sorted(first.assignment.items()) if value
        )
        solver.compact()
        # Forbid the memoized model; enough add_clause calls may bring
        # the rebuilt generation back to the memoized value.
        solver.add_clause([-true_var])
        result = solver.solve([group])
        assert result.satisfiable is True
        assert result.assignment[true_var] is False
