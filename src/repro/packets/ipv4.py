"""IPv4 header encode/decode with checksum handling."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.packets.checksum import internet_checksum

IPV4_HEADER_LEN = 20
DEFAULT_TTL = 64


@dataclass(frozen=True)
class Ipv4Header:
    """Decoded IPv4 header (options unsupported; IHL fixed at 5).

    ``tos`` here is the 6-bit DSCP value, matching OpenFlow 1.0's
    ``nw_tos`` (which masks out the 2 ECN bits).
    """

    src: int
    dst: int
    proto: int
    tos: int = 0
    ttl: int = DEFAULT_TTL
    ident: int = 0
    total_length: int | None = None  # filled from payload when None


def ip_to_str(addr: int) -> str:
    """32-bit int -> dotted quad."""
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def str_to_ip(text: str) -> int:
    """Dotted quad -> 32-bit int."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {text!r}")
    addr = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet in {text!r}")
        addr = (addr << 8) | octet
    return addr


def encode_ipv4(header: Ipv4Header, payload: bytes) -> bytes:
    """Serialize an IPv4 packet; computes total length and checksum."""
    total_length = header.total_length
    if total_length is None:
        total_length = IPV4_HEADER_LEN + len(payload)
    version_ihl = (4 << 4) | 5
    # nw_tos occupies the DSCP bits (upper 6) of the ToS byte.
    tos_byte = (header.tos & 0x3F) << 2
    head = struct.pack(
        "!BBHHHBBH4s4s",
        version_ihl,
        tos_byte,
        total_length,
        header.ident,
        0,  # flags/fragment offset
        header.ttl,
        header.proto,
        0,  # checksum placeholder
        header.src.to_bytes(4, "big"),
        header.dst.to_bytes(4, "big"),
    )
    checksum = internet_checksum(head)
    head = head[:10] + struct.pack("!H", checksum) + head[12:]
    return head + payload


def decode_ipv4(data: bytes) -> tuple[Ipv4Header, bytes]:
    """Parse an IPv4 packet; returns (header, payload).

    Raises:
        ValueError: on truncation, wrong version, or bad checksum.
    """
    if len(data) < IPV4_HEADER_LEN:
        raise ValueError(f"too short for IPv4: {len(data)} bytes")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise ValueError(f"not IPv4: version={version_ihl >> 4}")
    ihl = (version_ihl & 0xF) * 4
    if ihl < IPV4_HEADER_LEN or len(data) < ihl:
        raise ValueError(f"bad IHL: {ihl}")
    if internet_checksum(data[:ihl]) != 0:
        raise ValueError("IPv4 header checksum mismatch")
    tos_byte = data[1]
    total_length = struct.unpack("!H", data[2:4])[0]
    ident = struct.unpack("!H", data[4:6])[0]
    ttl = data[8]
    proto = data[9]
    src = int.from_bytes(data[12:16], "big")
    dst = int.from_bytes(data[16:20], "big")
    header = Ipv4Header(
        src=src,
        dst=dst,
        proto=proto,
        tos=(tos_byte >> 2) & 0x3F,
        ttl=ttl,
        ident=ident,
        total_length=total_length,
    )
    return header, data[ihl:]
