"""Table 2: probe generation time and probes found.

Paper reference (2.93-GHz Xeon, Cython + PicoSAT):

    Data set   avg [ms]  max [ms]  probes found
    Campus     4.03      5.29      10642 / 10958
    Stanford   1.48      3.85      2442 / 2755

We regenerate the same rows on the synthetic Stanford/Campus ACL tables
(full tables, identical rule counts).  Absolute times differ (pure
Python, this machine), but the ordering (Stanford faster than Campus),
the millisecond scale, and "probes found for the majority of rules"
must hold.

Scale: by default a deterministic sample of rules per table keeps the
run under a couple of minutes; REPRO_BENCH_SCALE=27 probes every rule.
"""

import random

from repro.analysis import format_table
from repro.core.probegen import ProbeGenerator, verify_probe
from repro.datasets import campus_table, stanford_table
from repro.openflow.match import Match

from .conftest import (
    bench_scale,
    bench_seed,
    print_header,
    write_bench_artifact,
)

CATCH = Match.build(dl_vlan=0xF03)

PAPER = {
    "Stanford": {"avg_ms": 1.48, "max_ms": 3.85, "found": 2442, "total": 2755},
    "Campus": {"avg_ms": 4.03, "max_ms": 5.29, "found": 10642, "total": 10958},
}


def probe_all(table, rules):
    generator = ProbeGenerator(catch_match=CATCH)
    times = []
    found = 0
    for rule in rules:
        result = generator.generate(table, rule)
        times.append(result.generation_time * 1000.0)
        if result.ok:
            found += 1
            valid, why = verify_probe(table, rule, result.header, CATCH)
            assert valid, why
    return times, found


def sample_rules(table, fraction, seed):
    rules = table.rules()
    count = max(50, min(len(rules), int(len(rules) * fraction)))
    rng = random.Random(seed)
    return rng.sample(rules, count)


def test_table2_probe_generation(benchmark):
    scale = bench_scale()
    fraction = min(1.0, 0.037 * scale)  # ~100 & ~400 rules at scale 1
    rows = []
    summary = {}
    artifact_rows = []
    for name, build in (
        ("Stanford", stanford_table), ("Campus", campus_table)
    ):
        table = build()
        rules = sample_rules(table, fraction, bench_seed())
        times, found = probe_all(table, rules)
        avg = sum(times) / len(times)
        worst = max(times)
        found_rate = found / len(rules)
        paper = PAPER[name]
        artifact_rows.append(
            {
                "dataset": name,
                "table_rules": len(table),
                "sampled_rules": len(rules),
                "avg_ms": round(avg, 3),
                "max_ms": round(worst, 3),
                "found": found,
                "found_rate": round(found_rate, 4),
                "paper_avg_ms": paper["avg_ms"],
                "paper_found_rate": round(
                    paper["found"] / paper["total"], 4
                ),
            }
        )
        rows.append(
            [
                name,
                f"{avg:.2f}",
                f"{worst:.2f}",
                f"{found}/{len(rules)} ({100 * found_rate:.1f}%)",
                f"{paper['avg_ms']:.2f}",
                f"{paper['max_ms']:.2f}",
                f"{paper['found']}/{paper['total']} "
                f"({100 * paper['found'] / paper['total']:.1f}%)",
            ]
        )
        summary[name] = (avg, found_rate)

    print_header("Table 2 — probe generation time (measured vs paper)")
    print(
        format_table(
            [
                "data set",
                "avg ms",
                "max ms",
                "found",
                "paper avg",
                "paper max",
                "paper found",
            ],
            rows,
        )
    )

    path = write_bench_artifact(
        "tab2",
        {
            "bench": "table2_probe_generation",
            "unit": "ms_per_probe",
            "rows": artifact_rows,
        },
    )
    print(f"artifact: {path}")

    # CI gates (shape): millisecond scale, Stanford faster than Campus,
    # probes found for the large majority of rules (paper: 89%/97%).
    assert summary["Stanford"][0] < summary["Campus"][0]
    assert summary["Campus"][0] < 100.0  # milliseconds, not seconds
    assert summary["Stanford"][1] > 0.75
    assert summary["Campus"][1] > 0.85

    # The timed kernel: one probe generation on the Stanford table.
    table = stanford_table()
    generator = ProbeGenerator(catch_match=CATCH)
    rules = sample_rules(table, 0.02, bench_seed() + 1)
    index = [0]

    def one_probe():
        rule = rules[index[0] % len(rules)]
        index[0] += 1
        return generator.generate(table, rule)

    benchmark(one_probe)
