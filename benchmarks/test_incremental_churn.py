"""Benchmark: incremental vs from-scratch probe generation under churn.

The paper's dynamic-monitoring hot path regenerates a catching probe
every time a rule near it churns.  This benchmark measures that
regeneration three ways on the same table and churn sequence:

* **from-scratch** — :class:`~repro.core.probegen.ProbeGenerator`
  rebuilds the whole CNF and a fresh solver per probe (the seed
  behaviour);
* **incremental** — :class:`~repro.core.probegen.ProbeGenContext` with
  its probe cache cleared before each call, so every call goes back to
  the persistent solver (retained match guards, DiffOutcome literals,
  persistent per-rule probe groups, learned lemmas, heuristics).  When
  the churn cancels out — as remove + re-add does — the persistent
  group makes the re-solve formula-identical and the solver's model
  cache answers it without running CDCL; that IS the incremental win
  being measured, not an artifact;
* **revalidate** — the full delta API as the Monitor drives it: the
  stale-marked cached probe is cheaply re-checked against the churned
  table and only re-solved if it actually died.

The table is adversarial for the overlap filter: one hot /8 rule whose
probe interacts with every other rule (half shadowing above, half in the
Distinguish chain below), so the SAT instance grows linearly with table
size — the regime where re-encoding dominates from-scratch time.

Scale: table sizes are capped at ``4096 * REPRO_BENCH_SCALE`` (0.25 in
CI exercises 64..1024; the default 1.0 runs the full 64..4096 sweep).

Writes ``BENCH_probegen.json`` and **fails** if incremental generation
is slower than from-scratch at any measured size >= 512 rules — this is
the CI performance gate for the incremental engine.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import print_header, write_bench_artifact
from repro.core.probegen import ProbeGenContext, ProbeGenerator, verify_probe
from repro.openflow.actions import output
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.sim.random import DeterministicRandom

CATCH = Match.build(dl_vlan=0xF03)
SIZES = (64, 256, 512, 1024, 2048, 4096)
HOT_PRIORITY = 5000


def _build_table(num_rules: int, rng: DeterministicRandom):
    """One hot /8 rule + ``num_rules - 1`` exact rules inside its prefix.

    Every filler overlaps the hot rule (so the hot probe's SAT instance
    sees the whole table) but fillers are pairwise disjoint.  Half the
    fillers sit above the hot rule (Hit constraints), half below
    (Distinguish chain).
    """
    table = FlowTable(check_overlap=False)
    hot = Rule(
        priority=HOT_PRIORITY,
        match=Match.build(nw_dst=(0x0A000000, 8)),
        actions=output(1),
    )
    table.install(hot)
    fillers = []
    suffixes = rng.sample(range(1, 1 << 22), num_rules - 1)
    for i, suffix in enumerate(suffixes):
        above = i % 2 == 0
        rule = Rule(
            priority=HOT_PRIORITY + 1 + i if above else 1 + i,
            match=Match.build(nw_dst=0x0A000000 + suffix),
            actions=output(2 + i % 3),
        )
        table.install(rule)
        fillers.append(rule)
    return table, hot, fillers


def _verify(table, rule, result) -> None:
    assert result.ok, f"hot probe unexpectedly failed: {result.reason}"
    valid, why = verify_probe(table, rule, result.header, CATCH)
    assert valid, why


def test_incremental_vs_scratch_churn(scale, seed):
    rng = DeterministicRandom(seed).fork(0xABC)
    steps = max(3, int(round(8 * min(scale, 1.0))))
    sizes = [n for n in SIZES if n <= 4096 * scale] or [SIZES[0]]

    print_header(
        "Incremental probe generation under churn "
        "(per-probe ms, median over churn events)"
    )
    print(
        f"{'rules':>6} {'overlap':>8} {'scratch':>10} {'incremental':>12} "
        f"{'revalidate':>11} {'speedup':>8}"
    )

    rows = []
    for num_rules in sizes:
        table, hot, fillers = _build_table(num_rules, rng.fork(num_rules))
        generator = ProbeGenerator(catch_match=CATCH)
        context = ProbeGenContext(generator, table=table)

        # Warm both paths once outside the timed loop.
        scratch_result = generator.generate(table, hot)
        _verify(table, hot, scratch_result)
        warm = context.probe_for(hot)
        _verify(table, hot, warm)

        scratch_ms, incremental_ms, revalidate_ms = [], [], []
        revalidate_solves = 0
        for _ in range(steps):
            victim = rng.choose(fillers)
            context.remove_rule(victim)
            context.add_rule(victim)

            start = time.perf_counter()
            scratch_result = generator.generate(table, hot)
            scratch_ms.append(1e3 * (time.perf_counter() - start))

            # Production path: stale cache entry, revalidate-or-solve.
            solves_before = context.stats.probes_generated
            start = time.perf_counter()
            reval_result = context.probe_for(hot)
            revalidate_ms.append(1e3 * (time.perf_counter() - start))
            revalidate_solves += context.stats.probes_generated - solves_before

            # Forced regeneration: same churn event, no cache at all.
            context.clear_cache()
            start = time.perf_counter()
            incr_result = context.probe_for(hot)
            incremental_ms.append(1e3 * (time.perf_counter() - start))

            # Equivalence: all three paths agree on this table state.
            assert scratch_result.ok == incr_result.ok == reval_result.ok
            _verify(table, hot, scratch_result)
            _verify(table, hot, incr_result)
            _verify(table, hot, reval_result)

        row = {
            "rules": num_rules,
            "overlap": scratch_result.overlapping_rules,
            "steps": steps,
            "scratch_ms": round(statistics.median(scratch_ms), 3),
            "incremental_ms": round(statistics.median(incremental_ms), 3),
            "revalidate_ms": round(statistics.median(revalidate_ms), 3),
            "revalidate_solves": revalidate_solves,
        }
        row["speedup"] = (
            round(row["scratch_ms"] / row["incremental_ms"], 2)
            if row["incremental_ms"] > 0
            else float("inf")
        )
        rows.append(row)
        print(
            f"{row['rules']:>6} {row['overlap']:>8} "
            f"{row['scratch_ms']:>10.2f} {row['incremental_ms']:>12.2f} "
            f"{row['revalidate_ms']:>11.3f} {row['speedup']:>7.1f}x"
        )

    path = write_bench_artifact(
        "probegen",
        {
            "bench": "incremental_probe_generation_under_churn",
            "unit": "ms_per_probe_median",
            "rows": rows,
        },
    )
    print(f"\nartifact: {path}")

    # CI gate: the incremental engine must never lose to from-scratch
    # once tables are big enough for re-encoding to matter.
    for row in rows:
        if row["rules"] >= 512:
            assert row["incremental_ms"] <= row["scratch_ms"], (
                f"incremental probe-gen slower than from-scratch at "
                f"{row['rules']} rules: {row['incremental_ms']:.2f}ms vs "
                f"{row['scratch_ms']:.2f}ms"
            )
