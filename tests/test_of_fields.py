"""Tests for the abstract header layout."""

import pytest

from repro.openflow.fields import (
    HEADER,
    HEADER_BITS,
    ETHERTYPE_IPV4,
    FieldName,
)


class TestLayout:
    def test_twelve_fields(self):
        assert len(HEADER) == 12

    def test_total_bits(self):
        # 16+48+48+16+12+3+32+32+8+6+16+16 = 253... recomputed from widths
        assert HEADER_BITS == sum(f.width for f in HEADER)

    def test_offsets_are_contiguous(self):
        offset = 0
        for field in HEADER:
            assert field.offset == offset
            offset += field.width
        assert offset == HEADER_BITS

    def test_field_lookup(self):
        field = HEADER.field(FieldName.NW_SRC)
        assert field.width == 32

    def test_names_in_layout_order(self):
        names = HEADER.names()
        assert names[0] == FieldName.IN_PORT
        assert names[-1] == FieldName.TP_DST

    def test_bit_of(self):
        nw_src = HEADER.field(FieldName.NW_SRC)
        assert HEADER.bit_of(FieldName.NW_SRC, 0) == nw_src.offset
        assert (
            HEADER.bit_of(FieldName.NW_SRC, 31) == nw_src.offset + 31
        )
        with pytest.raises(ValueError):
            HEADER.bit_of(FieldName.NW_SRC, 32)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        values = {
            FieldName.IN_PORT: 3,
            FieldName.DL_SRC: 0xAABBCCDDEEFF,
            FieldName.DL_TYPE: ETHERTYPE_IPV4,
            FieldName.NW_SRC: 0x0A000001,
            FieldName.TP_DST: 443,
        }
        packed = HEADER.pack(values)
        unpacked = HEADER.unpack(packed)
        for name, value in values.items():
            assert unpacked[name] == value

    def test_unpack_fills_missing_with_zero(self):
        unpacked = HEADER.unpack(0)
        assert all(v == 0 for v in unpacked.values())

    def test_pack_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            HEADER.pack({FieldName.DL_VLAN: 1 << 12})

    def test_unpack_rejects_too_wide_header(self):
        with pytest.raises(ValueError):
            HEADER.unpack(1 << HEADER_BITS)


class TestFieldSemantics:
    def test_conditional_parents(self):
        tp_src = HEADER.field(FieldName.TP_SRC)
        assert tp_src.parent == FieldName.NW_PROTO
        nw_proto = HEADER.field(FieldName.NW_PROTO)
        assert nw_proto.parent == FieldName.DL_TYPE

    def test_limited_domains(self):
        dl_type = HEADER.field(FieldName.DL_TYPE)
        assert ETHERTYPE_IPV4 in dl_type.valid_values
        nw_proto = HEADER.field(FieldName.NW_PROTO)
        assert 6 in nw_proto.valid_values  # TCP

    def test_contains(self):
        vlan = HEADER.field(FieldName.DL_VLAN)
        assert vlan.contains(0xFFF)
        assert not vlan.contains(0x1000)
        assert not vlan.contains(-1)

    def test_bit_positions(self):
        pcp = HEADER.field(FieldName.DL_VLAN_PCP)
        positions = list(pcp.bit_positions())
        assert len(positions) == 3
        assert positions[0] == pcp.offset
