"""Benchmark: monitoring quality under substrate chaos.

Monocle's detection gates (fig. 4 family) run on a *clean* control
plane; this benchmark re-runs the detection experiment on a degraded
one and pins that the robustness layer keeps the answer honest in both
directions:

* **Loss sweep** — a ring fleet with real rule-drop faults, whose
  control channels lose 1%–30% of their probe traffic (both
  directions, applied after rule installation) via
  :class:`~repro.fleet.failures.ChannelDegradation`.  Two defense
  lines show up in the data: at 1–5% the Monitor's built-in probe
  retries absorb every loss before a single spurious timeout
  surfaces; at 20–30% retries saturate and the alarm hysteresis
  (``alarm_confirmations``) must suppress the resulting strike storm.
  The gates: every real fault detected in every arm, **zero**
  loss-caused false alarms, median detection latency within
  ``LATENCY_FACTOR`` of the loss-free arm, and the burst arms must
  show the chaos actually bit (more probe traffic than baseline) and
  the hysteresis actually worked (more suppressions than baseline).
  All arms run the same monitor config, so the comparison isolates
  the channel, not the hysteresis overhead.

* **Worker recovery** — a sharded run (cut links, so multi-window)
  whose shard-0 worker is killed mid-scenario via
  :class:`~repro.fleet.shardworker.WorkerCrash`.  The self-healing
  coordinator must respawn and deterministically replay the shard: the
  merged alarm timeline must be **byte-identical** to an uncrashed
  run, with ``restarts >= 1`` and no
  :class:`~repro.fleet.coordinator.ShardRunError`.

Writes ``BENCH_chaos.json``.  Everything here is seed-deterministic —
the loss pattern, the strikes, the crash, the replay — so the gates
are exact asserts, not statistical bounds.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from benchmarks.conftest import print_header, write_bench_artifact
from repro.fleet.failures import ChannelDegradation, RuleDrop
from repro.fleet.runner import ScenarioSpec, run_scenario
from repro.fleet.shardworker import WorkerCrash

LOSS_ARMS = (0.0, 0.01, 0.05, 0.2, 0.3)
#: Loss levels where retries saturate and strikes reach the
#: hysteresis layer (used for the "chaos actually bit" gates).
BURST_ARMS = (0.2, 0.3)
#: Missing-probe strikes before an alarm; 3 keeps even the 30% arm
#: free of false alarms (P[k consecutive strikes] ~ p_strike^k).
CONFIRMATIONS = 3
LATENCY_FACTOR = 2.0
SEED_ARMS = 3
SWITCHES = 8


def _loss_spec(seed: int, loss: float, scale: float) -> ScenarioSpec:
    """One detection run: two real faults on a lossy control plane."""
    nodes = [f"sw{i}" for i in range(SWITCHES)]
    duration = max(2.0, 2.0 * scale)
    chaos_failures = tuple(
        # Both directions lose traffic: probe PacketOuts vanish on the
        # way down (a guaranteed spurious timeout) and PacketIn
        # observations on the way up.  The degradation starts *after*
        # the steady rules are installed, so lost FlowMods do not
        # manufacture real discrepancies — this arm measures probe
        # loss, exactly what the hysteresis is for.
        ChannelDegradation(
            at=duration * 0.1, node=node, loss=loss, direction="both"
        )
        for node in nodes
        if loss > 0.0
    )
    faults = (
        RuleDrop(at=duration * 0.3, node="sw1", rule_index=1),
        RuleDrop(at=duration * 0.55, node="sw5", rule_index=3),
    )
    return ScenarioSpec(
        topology="ring",
        size=SWITCHES,
        duration=duration,
        seed=seed,
        rules_per_switch=6,
        probe_rate=100.0,
        alarm_confirmations=CONFIRMATIONS,
        failures=chaos_failures + faults,
    )


def test_chaos_resilience(scale: float, seed: int) -> None:
    print_header(
        "Chaos resilience: detection quality on degraded substrates"
    )

    # ----- arm 1: probe-loss sweep ------------------------------------
    arms: dict[str, dict] = {}
    medians: dict[float, float] = {}
    suppressed_by_loss: dict[float, int] = {}
    probes_by_loss: dict[float, int] = {}
    for loss in LOSS_ARMS:
        latencies: list[float] = []
        false_alarms = 0
        suppressed = 0
        probes = 0
        faults = 0
        detected = 0
        for offset in range(SEED_ARMS):
            result = run_scenario(_loss_spec(seed + offset, loss, scale))
            metrics = result.metrics
            false_alarms += len(metrics.false_alarms)
            suppressed += metrics.alarms_suppressed
            probes += metrics.probes_sent
            for record in metrics.detections:
                if record.injection.chaos:
                    continue
                faults += 1
                if record.detected:
                    detected += 1
                    latencies.append(record.latency)
        median = statistics.median(latencies) if latencies else float("inf")
        medians[loss] = median
        suppressed_by_loss[loss] = suppressed
        probes_by_loss[loss] = probes
        arms[f"loss_{loss:g}"] = {
            "loss": loss,
            "faults": faults,
            "detected": detected,
            "false_alarms": false_alarms,
            "alarms_suppressed": suppressed,
            "probes_sent": probes,
            "median_latency_s": median,
        }
        print(
            f"  loss {100 * loss:4.1f}%: {detected}/{faults} faults "
            f"detected, {false_alarms} false alarms, "
            f"{suppressed} suppressed, {probes} probes, "
            f"median latency {median:.3f}s"
        )
        assert detected == faults, (
            f"loss {loss:g}: only {detected}/{faults} real faults "
            "detected through the degraded channel"
        )
        assert false_alarms == 0, (
            f"loss {loss:g}: {false_alarms} loss-caused false alarms "
            "leaked past the hysteresis"
        )

    baseline = medians[0.0]
    for loss in LOSS_ARMS[1:]:
        assert medians[loss] <= LATENCY_FACTOR * baseline, (
            f"loss {loss:g}: median detection latency "
            f"{medians[loss]:.3f}s exceeds {LATENCY_FACTOR}x the "
            f"loss-free arm ({baseline:.3f}s)"
        )
    for loss in BURST_ARMS:
        # The burst arms must prove the chaos was real, not that the
        # conditioner silently no-opped: losses force retry traffic
        # (more probe injections) and strikes the hysteresis ate.
        assert probes_by_loss[loss] > probes_by_loss[0.0], (
            f"loss {loss:g}: no extra probe traffic — the degradation "
            "never bit"
        )
        assert suppressed_by_loss[loss] > suppressed_by_loss[0.0], (
            f"loss {loss:g}: no suppressed strikes beyond baseline — "
            "the hysteresis was never exercised"
        )

    # ----- arm 2: worker crash + deterministic replay -----------------
    shard_spec = ScenarioSpec(
        topology="ring",
        size=SWITCHES,
        duration=max(1.0, 1.0 * scale),
        seed=seed,
        rules_per_switch=6,
        probe_rate=100.0,
        workers=2,
        worker_timeout=30.0,
        failures=(RuleDrop(at=0.3, node="sw0", rule_index=1),),
    )
    clean = run_scenario(shard_spec)
    crashed = run_scenario(
        replace(shard_spec, chaos=(WorkerCrash(shard=0, window=1),))
    )
    identical = (
        crashed.metrics.alarm_timeline == clean.metrics.alarm_timeline
    )
    arms["recovery"] = {
        "restarts": crashed.restarts,
        "degraded": crashed.degraded,
        "shard_status": crashed.metrics.shard_status,
        "timeline_events": len(crashed.metrics.alarm_timeline),
        "timeline_identical": identical,
    }
    print(
        f"  recovery: {crashed.restarts} restarts, "
        f"degraded={crashed.degraded}, "
        f"timeline identical={identical} "
        f"({len(crashed.metrics.alarm_timeline)} events)"
    )
    assert crashed.restarts >= 1, "the crash hook never fired"
    assert not crashed.degraded, "recovery burned the whole budget"
    assert identical, (
        "post-respawn alarm timeline diverged from the uncrashed run — "
        "deterministic replay is broken"
    )

    write_bench_artifact(
        "chaos",
        {
            "confirmations": CONFIRMATIONS,
            "latency_factor_gate": LATENCY_FACTOR,
            "arms": arms,
        },
    )
