"""Tuple-space-search overlap index (Srinivasan & Varghese).

The §5.4 pre-filter asks, for every probed rule, which rules' matches
*overlap* a given match.  A packed linear scan answers that in O(N) per
query; production tables (tens of thousands of ACL/routing rules) with
sparse overlap sets deserve O(candidates).

:class:`TupleSpaceIndex` buckets entries by a **mask signature** (the
"tuple" of classic tuple-space search, as in the Open vSwitch
classifier).  A signature is the entry's packed mask *coarsened* per
field — full-field masks kept whole, CIDR-style prefixes rounded down
to 8-bit steps, irregular masks dropped to wildcard — so real tables
collapse into a few dozen buckets instead of one per distinct prefix
length, keeping the per-query bucket loop small.

Queries prune whole buckets, then hash into the survivors:

* the query's own mask is coarsened once into a query signature; per
  bucket, ``anchor = bucket_sig & query_sig`` names the coarse bits
  *both* sides constrain.  Any overlapping row must agree with the
  query on the anchor, so one probe of the bucket's **anchor-level
  hash** (``value & anchor -> rows``, built lazily per anchor and
  maintained incrementally afterwards — the staged-lookup trick) yields
  the candidate list even when the query covers only part of the
  bucket's signature;
* buckets whose anchor is empty but that still share mask bits with
  the query are pruned through aggregate **value bounds** (OR and AND
  of member values) when no row can agree on the common bits;
* only then does a bucket fall back to a packed scan of its own rows.

Rows store their exact ``(value, mask)``, and every path re-verifies
the pairwise overlap test

    ``(v1 ^ v2) & m1 & m2 == 0``

so coarsening affects only performance, never the result set.

Maintenance is incremental: adds append (and join each built hash
level); removals tombstone the row and unlink its hash records; a
bucket compacts its row array when tombstones outnumber live rows.
The value bounds are monotone under removal (the stale OR is a
superset, the stale AND a subset, of the true bounds) so pruning stays
sound between compactions; compaction recomputes them.

Keys are arbitrary hashable identifiers — :class:`~repro.openflow.
table.FlowTable` indexes rule keys, the probe-generation context
indexes cached-probe keys, and the dynamic monitor indexes in-flight
update tokens with the same structure.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.openflow.fields import HEADER

#: One indexed entry: (packed value, packed mask, caller's key).
_Row = tuple[int, int, Hashable]

#: Compact a bucket when its row array holds more than this many rows
#: AND tombstones outnumber live rows (small buckets never bother).
_COMPACT_MIN_ROWS = 16

#: Prefix lengths are rounded down to this granularity when coarsening
#: a field's mask into the bucket signature.
_PREFIX_STEP = 8

#: Hash levels kept per bucket.  Each level costs O(1) per add/remove
#: to maintain, so a workload churning through exotic query masks stays
#: bounded; the cap is far above what rule-match distributions request.
_MAX_LEVELS = 16

#: (bit shift into the packed header, field width) per header field.
_FIELD_SPANS: tuple[tuple[int, int], ...] = tuple(
    (HEADER.total_bits - field.offset - field.width, field.width)
    for field in HEADER
)


def signature_of(mask: int) -> int:
    """Coarsen a packed mask into its bucket signature.

    Per field: a full-field mask stays; a prefix keeps its top
    ``_PREFIX_STEP``-aligned bits; anything else (including too-short
    prefixes and non-prefix masks) coarsens to wildcard.  The result is
    always a subset of ``mask``, which is all correctness needs — the
    signature only decides bucketing and hash keys.

    Signatures are intersection-compatible: for a signature ``s`` and
    any mask ``m``, ``signature_of(s & m) == s & signature_of(m)``, so
    a query coarsens its mask once and per-bucket anchors are one AND.
    """
    sig = 0
    for shift, width in _FIELD_SPANS:
        span = ((1 << width) - 1) << shift
        field_bits = mask & span
        if not field_bits:
            continue
        if field_bits == span:
            sig |= span
            continue
        field_mask = field_bits >> shift
        prefix_len = field_mask.bit_count()
        top = (((1 << prefix_len) - 1) << (width - prefix_len)) & (
            (1 << width) - 1
        )
        if field_mask != top:
            continue  # non-prefix mask: wildcard in the signature
        kept = (prefix_len // _PREFIX_STEP) * _PREFIX_STEP
        if kept:
            sig |= (((1 << kept) - 1) << (width - kept)) << shift
    return sig


class _Tuple:
    """One signature bucket."""

    __slots__ = ("sig", "rows", "levels", "live", "value_or", "value_and")

    def __init__(self, sig: int) -> None:
        self.sig = sig
        #: Append-only rows; ``None`` marks a tombstone.
        self.rows: list[_Row | None] = []
        #: anchor -> (value & anchor -> live rows): the staged hashes.
        #: Built lazily per anchor on first query, incremental after.
        self.levels: dict[int, dict[int, list[_Row]]] = {}
        self.live = 0
        #: OR / AND of every value added since the last compaction:
        #: sound over-approximations of the live bounds (module doc).
        self.value_or = 0
        self.value_and = -1

    def level(self, anchor: int) -> dict[int, list[_Row]]:
        """The hash on ``value & anchor``, building it on first use."""
        level = self.levels.get(anchor)
        if level is None:
            if len(self.levels) >= _MAX_LEVELS:
                # Evict an arbitrary old level, sparing the full
                # signature (the containment-lookup level).
                for old in self.levels:
                    if old != self.sig:
                        del self.levels[old]
                        break
            level = {}
            for row in self.rows:
                if row is not None:
                    level.setdefault(row[0] & anchor, []).append(row)
            self.levels[anchor] = level
        return level


class TupleSpaceIndex:
    """Incremental overlap/containment index over (value, mask) entries.

    ``add``/``discard`` are O(built levels) ~ O(1) amortized;
    :meth:`query` visits each bucket once — hash probe where the anchor
    is non-empty, value-bound prune or packed scan otherwise;
    :meth:`lookup` is one hash probe per bucket.
    """

    __slots__ = ("_tuples", "_where", "compactions")

    def __init__(self) -> None:
        #: signature -> bucket.
        self._tuples: dict[int, _Tuple] = {}
        #: key -> (signature, row index) for O(1) removal.
        self._where: dict[Hashable, tuple[int, int]] = {}
        self.compactions = 0

    # ----- maintenance ----------------------------------------------------

    def add(self, key: Hashable, value: int, mask: int) -> None:
        """Insert (or move) ``key`` with a packed (value, mask) entry."""
        if key in self._where:
            self.discard(key)
        sig = signature_of(mask)
        bucket = self._tuples.get(sig)
        if bucket is None:
            bucket = self._tuples[sig] = _Tuple(sig)
        row: _Row = (value, mask, key)
        self._where[key] = (sig, len(bucket.rows))
        bucket.rows.append(row)
        for anchor, level in bucket.levels.items():
            level.setdefault(value & anchor, []).append(row)
        bucket.live += 1
        bucket.value_or |= value
        bucket.value_and &= value

    def discard(self, key: Hashable) -> bool:
        """Remove ``key``; returns False when it was not indexed."""
        where = self._where.pop(key, None)
        if where is None:
            return False
        sig, row_index = where
        bucket = self._tuples[sig]
        row = bucket.rows[row_index]
        assert row is not None
        bucket.rows[row_index] = None
        bucket.live -= 1
        value = row[0]
        for anchor, level in bucket.levels.items():
            hash_key = value & anchor
            records = level[hash_key]
            records.remove(row)
            if not records:
                del level[hash_key]
        if bucket.live == 0:
            del self._tuples[sig]
        elif (
            len(bucket.rows) > _COMPACT_MIN_ROWS
            and len(bucket.rows) > 2 * bucket.live
        ):
            self._compact(bucket)
        return True

    def _compact(self, bucket: _Tuple) -> None:
        rows = [row for row in bucket.rows if row is not None]
        bucket.rows = rows
        value_or = 0
        value_and = -1
        where = self._where
        for row_index, row in enumerate(rows):
            where[row[2]] = (bucket.sig, row_index)
            value_or |= row[0]
            value_and &= row[0]
        bucket.value_or = value_or
        bucket.value_and = value_and
        self.compactions += 1

    def clear(self) -> None:
        self._tuples.clear()
        self._where.clear()

    def copy(self) -> "TupleSpaceIndex":
        """An independent copy.

        Row arrays and bounds are duplicated; the staged hash levels
        rebuild lazily on the copy's first queries (cheaper than deep-
        copying every level for forks that may never query).
        """
        dup = TupleSpaceIndex()
        dup._where = dict(self._where)
        dup.compactions = self.compactions
        for sig, bucket in self._tuples.items():
            twin = _Tuple(sig)
            twin.rows = list(bucket.rows)
            twin.live = bucket.live
            twin.value_or = bucket.value_or
            twin.value_and = bucket.value_and
            dup._tuples[sig] = twin
        return dup

    # ----- queries --------------------------------------------------------

    def query(self, value: int, mask: int) -> list[Hashable]:
        """Keys whose entry *overlaps* the query (some packet in both).

        Bucket order (and row order within a bucket) is arbitrary;
        callers needing a deterministic order sort the result.
        """
        out: list[Hashable] = []
        query_sig = signature_of(mask)
        for sig, bucket in self._tuples.items():
            anchor = sig & query_sig
            if anchor:
                # Both sides constrain the anchor bits, so overlapping
                # rows agree with the query there: one hash probe.
                hit = bucket.level(anchor).get(value & anchor)
                if hit:
                    out.extend(
                        k
                        for v, m, k in hit
                        if not ((v ^ value) & m & mask)
                    )
                continue
            common = sig & mask
            if common:
                # Coarse masks disjoint but exact ones not: value
                # bounds can prove no row agrees on the common bits.
                if value & common & ~bucket.value_or:
                    continue
                if ~value & common & bucket.value_and:
                    continue
            out.extend(
                row[2]
                for row in bucket.rows
                if row is not None
                and not ((row[0] ^ value) & row[1] & mask)
            )
        return out

    def lookup(self, packed_header: int) -> Iterator[Hashable]:
        """Keys whose entry *matches* a fully-specified packed header.

        One probe of each bucket's full-signature hash level (the
        classic tuple-space lookup).
        """
        for sig, bucket in self._tuples.items():
            hit = bucket.level(sig).get(packed_header & sig)
            if hit:
                for v, m, k in hit:
                    if not ((v ^ packed_header) & m):
                        yield k

    # ----- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._where

    @property
    def num_tuples(self) -> int:
        """Distinct mask signatures currently indexed."""
        return len(self._tuples)

    def __repr__(self) -> str:
        return (
            f"TupleSpaceIndex({len(self._where)} entries, "
            f"{len(self._tuples)} tuples)"
        )
