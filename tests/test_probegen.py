"""Tests for the probe generator: end-to-end Table 1 compliance,
unmonitorable detection, rule-kind coverage, and the §5.4 filter."""

import pytest

from repro.core.probegen import (
    ProbeGenerator,
    UnmonitorableReason,
    expected_outcomes,
    verify_probe,
)
from repro.openflow.actions import drop, ecmp, multicast, output
from repro.openflow.fields import FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable

CATCH = Match.build(dl_vlan=0xF03)
SRC = 0x0A000001
DST = 0x0A000002


def generator(**kwargs):
    return ProbeGenerator(catch_match=CATCH, **kwargs)


def table_of(*rules):
    table = FlowTable(check_overlap=False)
    for rule in rules:
        table.install(rule)
    return table


class TestBasicUnicast:
    def test_simple_rule_over_default(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator().generate(table, probed)
        assert result.ok
        assert verify_probe(
            table, probed, result.header, CATCH
        ) == (True, "ok")
        assert result.header[FieldName.DL_VLAN] == 0xF03
        assert result.packet is not None and len(result.packet) > 20

    def test_paper_3_1_example(self):
        rlowest = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        rlower = Rule(
            priority=5, match=Match.build(nw_src=SRC), actions=output(2)
        )
        rprobed = Rule(
            priority=10, match=Match.build(
                nw_src=SRC, nw_dst=DST
            ), actions=output(1)
        )
        table = table_of(rlowest, rlower, rprobed)
        result = generator().generate(table, rprobed)
        assert result.ok
        # The only valid probe is (srcIP=10.0.0.1, dstIP=10.0.0.2).
        assert result.header[FieldName.NW_SRC] == SRC
        assert result.header[FieldName.NW_DST] == DST
        assert verify_probe(table, rprobed, result.header, CATCH)[0]

    def test_probe_avoids_higher_priority_rules(self):
        probed = Rule(
            priority=5, match=Match.build(
                nw_dst=(0x0A000000, 24)
            ), actions=output(2)
        )
        shadow = Rule(
            priority=9, match=Match.build(nw_dst=DST), actions=output(3)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, shadow, default)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.header[FieldName.NW_DST] != DST
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_outcomes_reported(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator().generate(table, probed)
        assert result.outcome_present.ports() == {2}
        assert result.outcome_absent.ports() == {1}
        assert result.expects_return()


class TestUnmonitorable:
    def test_fully_shadowed_rule(self):
        primary = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(1)
        )
        backup = Rule(
            priority=5, match=Match.build(nw_dst=DST), actions=output(2)
        )
        table = table_of(primary, backup)
        result = generator().generate(table, backup)
        assert not result.ok
        assert result.reason == UnmonitorableReason.UNSATISFIABLE

    def test_same_outcome_as_default(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(1)
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert not result.ok

    def test_catch_conflict_unmonitorable(self):
        # The rule pins dl_vlan to a non-reserved value: the probe cannot
        # both hit it and match the catching rule.
        probed = Rule(
            priority=10, match=Match.build(dl_vlan=5), actions=output(1)
        )
        table = table_of(probed)
        result = generator().generate(table, probed)
        assert not result.ok

    def test_drop_over_drop_default_unmonitorable(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=drop())
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=drop()
        )
        table = table_of(default, probed)
        assert not generator().generate(table, probed).ok


class TestRewriteRules:
    def test_rewrite_distinguishes_same_port(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10,
            match=Match.build(nw_src=SRC),
            actions=output(1, nw_tos=0x2A),
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.header[FieldName.NW_TOS] != 0x2A
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_probe_generator_refuses_reserved_field_rewrites(self):
        bad = Rule(
            priority=5,
            match=Match.build(nw_src=SRC),
            actions=output(1, dl_vlan=0xF03),
        )
        table = table_of(bad)
        with pytest.raises(ValueError):
            generator().generate(table, bad)


class TestDropRules:
    def test_negative_probe_for_drop(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=drop()
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.outcome_present.is_drop()
        assert not result.expects_return()
        assert result.outcome_absent.ports() == {1}
        assert verify_probe(table, probed, result.header, CATCH)[0]


class TestMulticastEcmp:
    def test_multicast_vs_unicast(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(
                nw_dst=DST
            ), actions=multicast([1, 2])
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert verify_probe(table, probed, result.header, CATCH)[0]

    def test_ecmp_over_member_unicast_unmonitorable(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=ecmp([1, 2])
        )
        table = table_of(default, probed)
        # ECMP may pick port 1 = the default's port: ambiguous.
        assert not generator().generate(table, probed).ok

    def test_ecmp_disjoint_from_default(self):
        default = Rule(priority=0, match=Match.wildcard(), actions=output(5))
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=ecmp([1, 2])
        )
        table = table_of(default, probed)
        result = generator().generate(table, probed)
        assert result.ok
        assert result.outcome_present.ecmp
        assert verify_probe(table, probed, result.header, CATCH)[0]


class TestInPortHandling:
    def test_valid_in_ports_respected(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator(valid_in_ports=(3, 7)).generate(table, probed)
        assert result.ok
        assert result.header[FieldName.IN_PORT] in (3, 7)

    def test_in_port_match_conflicting_with_valid_ports(self):
        probed = Rule(
            priority=10, match=Match.build(
                in_port=9, nw_dst=DST
            ), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        result = generator(valid_in_ports=(3, 7)).generate(table, probed)
        assert not result.ok


class TestOverlapFilter:
    def build_big_table(self):
        rules = [
            Rule(
                priority=100 + i,
                match=Match.build(nw_dst=0x14000000 + i),
                actions=output(1 + i % 3),
            )
            for i in range(50)
        ]
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        return table_of(probed, default, *rules), probed

    def test_filter_reduces_instance_size(self):
        table, probed = self.build_big_table()
        with_filter = generator().generate(table, probed)
        without_filter = generator(
            overlap_filter=False
        ).generate(table, probed)
        assert with_filter.ok and without_filter.ok
        assert with_filter.overlapping_rules < without_filter.overlapping_rules
        assert with_filter.cnf_clauses < without_filter.cnf_clauses

    def test_filter_preserves_probe_validity(self):
        table, probed = self.build_big_table()
        for flag in (True, False):
            result = generator(overlap_filter=flag).generate(table, probed)
            assert verify_probe(table, probed, result.header, CATCH)[0]


class TestExpectedOutcomes:
    def test_present_and_absent(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        default = Rule(priority=0, match=Match.wildcard(), actions=output(1))
        table = table_of(probed, default)
        header = {FieldName.NW_DST: DST}
        present, absent = expected_outcomes(table, probed, header)
        assert present.ports() == {2}
        assert absent.ports() == {1}

    def test_absent_to_miss_drop(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        table = table_of(probed)
        present, absent = expected_outcomes(
            table, probed, {FieldName.NW_DST: DST}
        )
        assert present.ports() == {2}
        assert absent.is_drop()


class TestStatsAndBudget:
    def test_generation_time_recorded(self):
        probed = Rule(
            priority=10, match=Match.build(nw_dst=DST), actions=output(2)
        )
        table = table_of(
            probed, Rule(priority=0, match=Match.wildcard(), actions=output(1))
        )
        result = generator().generate(table, probed)
        from repro.openflow.fields import HEADER_BITS

        assert result.generation_time > 0
        assert result.cnf_vars >= HEADER_BITS  # header bits + Tseitin vars


class TestPersistentChains:
    """Persistent per-rule probe groups in ProbeGenContext."""

    def _context(self, *rules):
        from repro.core.probegen import ProbeGenContext

        context = ProbeGenContext(generator())
        for rule in rules:
            context.add_rule(rule)
        return context

    def _rules(self):
        hot = Rule(
            priority=100,
            match=Match.build(nw_dst=(0x0A000000, 8)),
            actions=output(2),
        )
        below = Rule(
            priority=50,
            match=Match.build(nw_dst=0x0A000005),
            actions=drop(),
        )
        above = Rule(
            priority=200,
            match=Match.build(nw_dst=0x0A000009),
            actions=output(3),
        )
        return hot, below, above

    def test_chain_reused_across_probes(self):
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        assert context.probe_for(hot).ok
        context.clear_cache()  # force a real solve, same table
        assert context.probe_for(hot).ok
        assert context.stats.chain_emits == 1
        assert context.stats.chain_reuses == 1
        assert context.stats.chain_retractions == 0

    def test_chain_survives_remove_readd_churn(self):
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        assert context.probe_for(hot).ok
        context.remove_rule(below)
        context.add_rule(below)
        context.clear_cache()
        assert context.probe_for(hot).ok
        # The overlap context is unchanged, so the chain group (and via
        # the solver's model cache, the whole solve) is reused.
        assert context.stats.chain_emits == 1
        assert context.stats.chain_reuses == 1

    def test_chain_retracted_when_lower_overlap_churns(self):
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        assert context.probe_for(hot).ok
        # Change the lower rule's behaviour: the Distinguish chain for
        # the hot rule is stale and must be re-emitted.
        context.add_rule(below.with_actions(output(4)))
        context.clear_cache()
        result = context.probe_for(hot)
        assert result.ok
        assert context.stats.chain_emits == 2
        assert context.stats.chain_retractions == 1
        valid, why = verify_probe(context.table, hot, result.header, CATCH)
        assert valid, why

    def test_chain_kept_when_higher_actions_churn(self):
        # Higher rules enter the constraints only via their matches;
        # an action change above the probed rule must not retract.
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        assert context.probe_for(hot).ok
        context.add_rule(above.with_actions(output(5)))
        context.clear_cache()
        assert context.probe_for(hot).ok
        assert context.stats.chain_emits == 1
        assert context.stats.chain_reuses == 1

    def test_chain_retired_with_rule_removal(self):
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        assert context.probe_for(hot).ok
        retired_before = context.solver.stats.groups_retired
        context.remove_rule(hot)
        assert context.solver.stats.groups_retired == retired_before + 1
        assert context.stats.chain_retractions == 1

    def test_chain_lru_eviction_bounds_live_vars(self):
        from repro.core.probegen import ProbeGenContext

        context = ProbeGenContext(generator())
        context._chain_budget = lambda: 4  # tiny budget for the test
        rules = []
        for i in range(6):
            probed = Rule(
                priority=100 + i,
                match=Match.build(nw_dst=(0x0A000000 + (i << 16), 16)),
                actions=output(2 + i % 3),
            )
            lower = Rule(
                priority=10 + i,
                match=Match.build(nw_dst=0x0A000001 + (i << 16)),
                actions=drop(),
            )
            context.add_rule(probed)
            context.add_rule(lower)
            rules.append(probed)
        for rule in rules:
            context.probe_for(rule)
        assert context._chain_vars <= 4 + max(
            context.solver.group_size(group)
            for group, _sig in context._chains.values()
        )
        assert context.stats.chain_retractions > 0
        # Evicted chains re-emit and still produce valid probes.
        context.clear_cache()
        for rule in rules:
            result = context.probe_for(rule)
            assert result.ok
            valid, why = verify_probe(
                context.table, rule, result.header, CATCH
            )
            assert valid, why

    def test_fork_is_independent_and_byte_identical(self):
        hot, below, above = self._rules()
        context = self._context(hot, below, above)
        first = context.probe_for(hot)
        fork = context.fork()
        # Same churn on both sides -> byte-identical probes.
        change = below.with_actions(output(4))
        context.add_rule(change)
        fork.add_rule(change)
        context.clear_cache()
        fork.clear_cache()
        a = context.probe_for(hot)
        b = fork.probe_for(hot)
        assert a.packet == b.packet and a.header == b.header
        # Diverging the fork does not touch the original.
        fork.remove_rule(above)
        assert context.table.get(*above.key()) is not None
        assert fork.table.get(*above.key()) is None
        again = context.probe_for(hot)
        assert again.packet == first.packet or again.ok
