"""Dynamic (reconfiguration) monitoring — paper §4.

:class:`DynamicMonitor` wraps a :class:`~repro.core.monitor.Monitor` and
intercepts FlowMods on their way to the switch:

* **additions** are probed like steady-state rules, assuming the rule is
  installed; transient absence is tolerated (no alarm) and the update is
  acknowledged to the controller the moment a probe confirms the rule in
  the data plane (§4.1).
* **deletions** use the same probe but are confirmed when the probe
  starts hitting the underlying lower-priority outcome (§4.1).
* **modifications** use the altered-table construction: lower-priority
  rules removed, the original rule re-inserted one priority level below
  the new version, then standard probe generation (§4.1).
* FlowMods whose match overlaps a yet-unconfirmed update are **queued**
  until that update confirms (§4.2's implementation choice).
* optional **drop-postponing** (§4.3) converts drop-rule additions into
  a tag-and-forward stand-in that is positively confirmable, then swaps
  the real drop in after the acknowledgment.

Confirmations are surfaced both as an :class:`UpdateAck` control message
sent to the controller and through an ``on_confirmed`` callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.droppostpone import finalize_drop_rule, postpone_drop_rule
from repro.core.monitor import (
    Monitor,
    OutstandingProbe,
    outcome_observations,
)
from repro.core.probegen import ProbeResult
from repro.openflow.messages import FlowMod, FlowModCommand, Message, next_xid
from repro.openflow.rule import Rule
from repro.openflow.table import FlowTable
from repro.openflow.tuplespace import TupleSpaceIndex


@dataclass
class UpdateAck(Message):
    """Monocle -> controller: the update is provably in the data plane."""

    flowmod_xid: int = 0
    switch_number: int = 0


@dataclass
class PendingUpdate:
    """One FlowMod being confirmed."""

    mod: FlowMod
    started: float
    #: Probes that must all confirm (non-strict deletes may need several).
    remaining: int
    confirmed: bool = False
    gave_up: bool = False
    #: For drop-postponing: the finalize FlowMod to send after confirm.
    finalize: FlowMod | None = None
    #: Key in the monitor's unconfirmed-update overlap index.
    token: int = 0
    #: Rule keys this update actually touched (resolved per path at
    #: start time); fed to the scheduler as reprobe hints on confirm.
    #: Empty for deletions — a removed rule cannot be re-probed.
    hint_keys: tuple = ()
    #: Trace span id tying the update's pending/confirmed/gaveup
    #: events together (0 when observability is disabled).
    span: int = 0


class DynamicMonitor:
    """Per-switch update confirmation layered over a Monitor."""

    def __init__(
        self,
        monitor: Monitor,
        on_confirmed: Callable[[FlowMod], None] | None = None,
        send_ack: bool = True,
        use_drop_postponing: bool = False,
        drop_postpone_port: int | None = None,
    ) -> None:
        self.monitor = monitor
        # Updates are confirmed with transient tolerance here, so the
        # static-deployment promotion-grace barrier must not engage.
        monitor.dynamic_guarded = True
        self.sim = monitor.sim
        self.obs = monitor.obs
        if self.obs.enabled:
            self._h_confirm = self.obs.metrics.histogram(
                "monocle_update_confirmation_seconds",
                node=repr(monitor.node),
            )
        self.on_confirmed = on_confirmed
        self.send_ack = send_ack
        self.use_drop_postponing = use_drop_postponing
        self.drop_postpone_port = drop_postpone_port
        self.pending: list[PendingUpdate] = []
        self.queue: list[FlowMod] = []
        self.updates_confirmed = 0
        self.updates_given_up = 0
        #: Tuple-space indexes over the in-flight update matches, so the
        #: per-FlowMod "does this overlap anything unconfirmed?" check
        #: visits O(overlap candidates) instead of scanning the whole
        #: pending list + queue.  Tokens identify entries; an update's
        #: token is dropped the moment it confirms or gives up.
        self._next_token = 0
        self._unconfirmed = TupleSpaceIndex()
        self._queued_matches = TupleSpaceIndex()
        self._queue_tokens: list[int] = []

    # ----- controller-facing entry point ------------------------------------

    def from_controller(self, msg: Message) -> None:
        """Intercept FlowMods; pass everything else through."""
        if not isinstance(msg, FlowMod):
            self.monitor.from_controller(msg)
            return
        if self._overlaps_unconfirmed(msg):
            self._enqueue(msg)
            return
        self._start_update(msg)

    def _overlaps_unconfirmed(self, mod: FlowMod) -> bool:
        value, mask = mod.match.packed()
        return bool(self._unconfirmed.query(value, mask)) or bool(
            self._queued_matches.query(value, mask)
        )

    # ----- in-flight bookkeeping --------------------------------------------

    def _enqueue(self, mod: FlowMod) -> None:
        self._next_token += 1
        token = self._next_token
        self.queue.append(mod)
        self._queue_tokens.append(token)
        self._queued_matches.add(token, *mod.match.packed())

    def _track(self, update: PendingUpdate) -> None:
        """Register a started update in pending + the overlap index."""
        self._next_token += 1
        update.token = self._next_token
        self.pending.append(update)
        self._unconfirmed.add(update.token, *update.mod.match.packed())
        if self.obs.enabled:
            update.span = self.obs.next_span()
            self.obs.emit(
                "update.pending",
                node=self.monitor.node,
                span=update.span,
                xid=update.mod.xid,
                command=update.mod.command.name,
                priority=update.mod.priority,
                match=update.mod.match,
                pieces=update.remaining,
            )

    def _give_up(self, update: PendingUpdate) -> None:
        update.gave_up = True
        self.updates_given_up += 1
        self._unconfirmed.discard(update.token)
        # An unconfirmable update is a strike against the switch: feed
        # quarantine scoring (no-op unless quarantine is enabled).
        # Deletions carry no rule keys — score them by xid so each
        # distinct abandoned update still counts as one suspect.
        for key in update.hint_keys or (("gaveup", update.mod.xid),):
            self.monitor.note_suspect(key)
        if self.obs.enabled:
            self.obs.emit(
                "update.gaveup",
                node=self.monitor.node,
                span=update.span or None,
                xid=update.mod.xid,
                waited_seconds=self.sim.now - update.started,
            )

    # ----- update lifecycle ------------------------------------------------

    def _start_update(self, mod: FlowMod) -> None:
        command = mod.command
        if command is FlowModCommand.ADD:
            self._start_add(mod)
        elif command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            self._start_modify(mod)
        elif command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            self._start_delete(mod)
        else:  # pragma: no cover - enum is exhaustive
            self.monitor.from_controller(mod)

    def _start_add(self, mod: FlowMod) -> None:
        if (
            self.use_drop_postponing
            and not mod.actions.forwarding_set()
            and self.drop_postpone_port is not None
        ):
            self._start_postponed_drop(mod)
            return
        # Track in the expected table and forward to the switch.
        self.monitor.from_controller(mod)
        rule = self.monitor.expected.get(mod.priority, mod.match)
        assert rule is not None
        update = PendingUpdate(
            mod=mod,
            started=self.sim.now,
            remaining=1,
            hint_keys=(rule.key(),),
        )
        self._track(update)
        result = self.monitor.probe_for_rule(rule)
        if not result.ok:
            # Unmonitorable update: acknowledge optimistically but count it.
            self._confirm_piece(update, monitorable=False)
            return
        self._probe_until_confirmed(update, result, confirm_on="present")

    def _start_postponed_drop(self, mod: FlowMod) -> None:
        """§4.3: install a tag-and-forward stand-in, confirm, then drop."""
        rule = Rule(
            priority=mod.priority,
            match=mod.match,
            actions=mod.actions,
            cookie=mod.cookie,
        )
        stand_in = postpone_drop_rule(rule, self.drop_postpone_port)
        stand_in_mod = FlowMod(
            xid=mod.xid,
            command=FlowModCommand.ADD,
            match=stand_in.match,
            priority=stand_in.priority,
            actions=stand_in.actions,
            cookie=stand_in.cookie,
        )
        finalize = FlowMod(
            xid=next_xid(),
            command=FlowModCommand.MODIFY_STRICT,
            match=rule.match,
            priority=rule.priority,
            actions=finalize_drop_rule(stand_in).actions,
            cookie=rule.cookie,
        )
        self.monitor.from_controller(stand_in_mod)
        tracked = self.monitor.expected.get(stand_in.priority, stand_in.match)
        assert tracked is not None
        update = PendingUpdate(
            mod=mod,
            started=self.sim.now,
            remaining=1,
            finalize=finalize,
            # The stand-in and the final drop rule share the original
            # rule's (priority, match) key.
            hint_keys=(rule.key(),),
        )
        self._track(update)
        result = self.monitor.probe_for_rule(tracked)
        if not result.ok:
            self._confirm_piece(update, monitorable=False)
            return
        self._probe_until_confirmed(update, result, confirm_on="present")

    def _start_modify(self, mod: FlowMod) -> None:
        old_rule = self.monitor.expected.get(mod.priority, mod.match)
        if old_rule is None:
            # OF 1.0: modify with no match behaves like add.
            self._start_add(mod)
            return
        new_rule = old_rule.with_actions(mod.actions)
        result = self._modification_probe(old_rule, new_rule)
        self.monitor.from_controller(mod)
        update = PendingUpdate(
            mod=mod,
            started=self.sim.now,
            remaining=1,
            hint_keys=(old_rule.key(),),
        )
        self._track(update)
        if result is None or not result.ok:
            self._confirm_piece(update, monitorable=False)
            return
        self._probe_until_confirmed(update, result, confirm_on="present")

    def _modification_probe(
        self, old_rule: Rule, new_rule: Rule
    ) -> ProbeResult | None:
        """The §4.1 altered-table construction.

        Copy the expected table, drop all rules with lower priority,
        reinsert the old version one priority level below, and run
        standard probe generation for the new version.

        By the §5.4 lemma only rules overlapping the modified match can
        enter the probe's constraints, so the altered table is built
        from the overlap candidates instead of a full table copy —
        churning one rule of an N-rule table costs O(overlap) installs,
        not O(N).
        """
        if old_rule.priority == 0:
            return None  # cannot demote below priority 0
        expected = self.monitor.expected
        if self.monitor.generator.overlap_filter:
            pool = expected.overlapping(old_rule.match)
        else:
            pool = expected.rules()
        altered = FlowTable(check_overlap=False)
        for rule in pool:
            if rule.priority > old_rule.priority:
                altered.install(rule)
        altered.install(new_rule)
        altered.install(old_rule.with_priority(old_rule.priority - 1))
        return self.monitor.generator.generate(altered, new_rule)

    def _start_delete(self, mod: FlowMod) -> None:
        # Identify the doomed rules *before* updating the expected table.
        if mod.command is FlowModCommand.DELETE_STRICT:
            target = self.monitor.expected.get(mod.priority, mod.match)
            doomed = [target] if target is not None else []
        else:
            # Index-pruned: coverage implies overlap, so the candidate
            # pool is the overlap set, not the whole expected table.
            doomed = self.monitor.expected.covered_rules(mod.match)
        probes: list[ProbeResult] = []
        for rule in doomed:
            probes.append(self.monitor.probe_for_rule(rule))
        self.monitor.from_controller(mod)
        update = PendingUpdate(
            mod=mod, started=self.sim.now, remaining=max(1, len(doomed))
        )
        self._track(update)
        if not doomed:
            self._confirm_piece(update, monitorable=False)
            return
        monitorable = 0
        for result in probes:
            if result.ok:
                monitorable += 1
                self._probe_until_confirmed(
                    update, result, confirm_on="absent"
                )
        unmonitorable = len(doomed) - monitorable
        for _ in range(unmonitorable):
            self._confirm_piece(update, monitorable=False)

    # ----- probe-until-confirmed loop ----------------------------------------

    #: Re-injection backoff cap: when a switch's control queue is backed
    #: up (large batched updates, §8.4), probing every few ms would
    #: flood the channel; the interval doubles up to this bound.
    MAX_PROBE_INTERVAL = 0.050

    def _probe_until_confirmed(
        self, update: PendingUpdate, result: ProbeResult, confirm_on: str
    ) -> None:
        """Keep probing until the data plane reflects the update.

        Positive confirmation (the new state is observable): one
        long-lived probe re-injected on a timer — starting at
        ``update_probe_interval`` and backing off 2x up to
        MAX_PROBE_INTERVAL — until a catch confirms it or the update
        deadline passes.  Fresh installs confirm within a few ms of the
        data plane changing; backlogged ones are polled gently so
        probes don't flood the already-congested control channel.

        Negative confirmation (the new state is a drop: silence is the
        only signal): repeated short timeout rounds — probes returning
        with the *old* state restart the round (transient tolerance);
        a fully quiet round confirms.  This inherits negative probing's
        false-positive caveat (§3.3); enable drop-postponing (§4.3) for
        the reliable variant.
        """
        config = self.monitor.config
        assert result.outcome_present is not None
        assert result.outcome_absent is not None
        target_obs = (
            outcome_observations(
                result.outcome_present, self.monitor.observable_ports
            )
            if confirm_on == "present"
            else outcome_observations(
                result.outcome_absent, self.monitor.observable_ports
            )
        )

        def confirmed(_probe: OutstandingProbe) -> None:
            self._confirm_piece(update, monitorable=True)

        if target_obs:
            def gave_up(_probe: OutstandingProbe, _kind: str) -> None:
                if update.confirmed or update.gave_up:
                    return
                self._give_up(update)

            self.monitor.launch_probe(
                result,
                confirm_on=confirm_on,
                on_confirm=confirmed,
                on_alarm=gave_up,
                retry_interval=config.update_probe_interval,
                retries=-1,
                timeout=config.update_deadline,
                retry_backoff=2.0,
                max_retry_interval=self.MAX_PROBE_INTERVAL,
                tolerate_anti=True,
            )
            return

        # Negative path: short rounds, relaunch on any contrary signal.
        attempt = [0]

        def relaunch(_probe: OutstandingProbe, _kind: str) -> None:
            if update.confirmed or update.gave_up:
                return
            if self.sim.now - update.started > config.update_deadline:
                self._give_up(update)
                return
            attempt[0] += 1
            delay = min(
                config.update_probe_interval * (2 ** attempt[0]),
                self.MAX_PROBE_INTERVAL,
            )
            self.sim.schedule(delay, launch)

        def launch() -> None:
            if update.confirmed or update.gave_up:
                return
            self.monitor.launch_probe(
                result,
                confirm_on=confirm_on,
                on_confirm=confirmed,
                on_alarm=relaunch,
            )

        launch()

    def _confirm_piece(self, update: PendingUpdate, monitorable: bool) -> None:
        update.remaining -= 1
        if update.remaining > 0 or update.confirmed:
            return
        update.confirmed = True
        self.updates_confirmed += 1
        self._unconfirmed.discard(update.token)
        if self.obs.enabled:
            latency = self.sim.now - update.started
            self.obs.emit(
                "update.confirmed",
                node=self.monitor.node,
                span=update.span or None,
                xid=update.mod.xid,
                latency_seconds=latency,
                monitorable=monitorable,
            )
            self._h_confirm.observe(latency)
        if update.finalize is not None:
            # Drop-postponing: swap the real drop rule in (§4.3).
            self.monitor.from_controller(update.finalize)
        # Post-confirmation reprobe hints: a just-confirmed update is
        # still the likeliest region of the table to regress (§4), so
        # feed the scheduler's recency weights instead of launching
        # ad-hoc probes — priority-aware policies re-visit the rules in
        # the steady cycle; round-robin ignores the hints by design.
        # Keys were resolved per update path at start time (deletions
        # carry none: a removed rule cannot be re-probed).
        for key in update.hint_keys:
            self.monitor.scheduler.note_update(key)
        if self.send_ack and self.monitor.forward_up is not None:
            self.monitor.forward_up(
                UpdateAck(
                    flowmod_xid=update.mod.xid,
                    switch_number=self.monitor.switch_number,
                )
            )
        if self.on_confirmed is not None:
            self.on_confirmed(update.mod)
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Release queued FlowMods that no longer overlap anything.

        Per-mod blocking checks run against the unconfirmed-update
        index plus an index of the mods already seen this pass (queue
        order is preserved: a released mod still blocks later
        overlapping ones, exactly as the old linear scan did).
        """
        self.pending = [
            u for u in self.pending if not (u.confirmed or u.gave_up)
        ]
        if not self.queue:
            return
        still_queued: list[FlowMod] = []
        still_tokens: list[int] = []
        released: list[FlowMod] = []
        ahead = TupleSpaceIndex()
        for token, mod in zip(self._queue_tokens, self.queue):
            value, mask = mod.match.packed()
            blocked = bool(self._unconfirmed.query(value, mask)) or bool(
                ahead.query(value, mask)
            )
            ahead.add(token, value, mask)
            if blocked:
                still_queued.append(mod)
                still_tokens.append(token)
            else:
                released.append(mod)
                self._queued_matches.discard(token)
        self.queue = still_queued
        self._queue_tokens = still_tokens
        for mod in released:
            self._start_update(mod)
