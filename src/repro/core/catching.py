"""Network-wide catching-rule planning (paper §6).

To collect probes, every switch pre-installs *catching rules* matching
reserved values of otherwise-unused header fields.  Reserved values are
switch identifiers; vertex coloring shrinks the identifier space:

* **Strategy 1** — one reserved field ``H``.  A switch with color ``c``
  installs, for every other color ``c'``, a top-priority rule
  ``match(H=value(c')) -> controller``.  A probe for switch ``i`` sets
  ``H = value(color(i))``: it passes through ``i`` (no catching rule for
  its own color there) and is caught by any neighbor (adjacent switches
  have different colors).
* **Strategy 2** — two reserved fields ``H1`` (probed switch), ``H2``
  (intended downstream).  Each switch installs one catch rule
  ``match(H2=own) -> controller`` and, just below it, filter rules
  ``match(H1=other) -> drop``, so a probe is delivered to the controller
  exactly once — by the intended downstream switch.  Correctness needs
  distinct identifiers within every 2-neighborhood: coloring of the
  squared graph.

The planner returns a :class:`CatchingPlan` that yields the concrete
rules per switch and the reserved-field requirements for probes
(used as the Collect match by the probe generator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.coloring import (
    GreedyOrder,
    exact_coloring,
    greedy_coloring,
    is_proper_coloring,
    square_graph,
)
from repro.openflow.actions import ActionList, Drop, Forward, CONTROLLER_PORT
from repro.openflow.fields import HEADER, FieldName
from repro.openflow.match import Match
from repro.openflow.rule import Rule

#: Priorities reserved for the monitoring rules; production rules must
#: stay below CATCH-levels (the paper requires catching rules to have
#: the highest priority among all rules).
CATCH_PRIORITY = 0xFFFF
FILTER_PRIORITY = 0xFFFE


class ColoringAlgorithm(str, enum.Enum):
    """Which coloring solver the planner uses."""

    EXACT = "exact"
    DSATUR = "dsatur"
    LARGEST_FIRST = "largest_first"
    NONE = "none"  # one distinct identifier per switch (no coloring)


class CapacityError(ValueError):
    """The reserved field cannot hold the required number of identifiers."""


@dataclass
class CatchingPlan:
    """A concrete catching-rule assignment for one network.

    Attributes:
        strategy: 1 or 2 (see module docstring).
        color_of: switch -> color (0-based).
        field1: the reserved field ``H`` (strategy 1) / ``H1``.
        field2: the reserved field ``H2`` (strategy 2 only).
        base1 / base2: reserved values are ``base + color``; production
            traffic must avoid these values.
    """

    strategy: int
    color_of: dict
    field1: FieldName
    field2: FieldName | None
    base1: int
    base2: int

    @property
    def num_reserved_values(self) -> int:
        """Identifiers needed = colors used (the Figure 9 metric)."""
        if not self.color_of:
            return 0
        return len(set(self.color_of.values()))

    def value1(self, switch) -> int:
        """Reserved value of ``field1`` for this switch."""
        return self.base1 + self.color_of[switch]

    def value2(self, switch) -> int:
        """Reserved value of ``field2`` for this switch (strategy 2)."""
        if self.strategy != 2:
            raise ValueError("value2 only exists for strategy 2")
        return self.base2 + self.color_of[switch]

    def reserved_values1(self) -> set[int]:
        """All reserved values of field1 across the network."""
        return {self.base1 + c for c in set(self.color_of.values())}

    def catching_rules(self, switch) -> list[Rule]:
        """The monitoring rules this switch must pre-install."""
        rules: list[Rule] = []
        own_color = self.color_of[switch]
        if self.strategy == 1:
            for color in sorted(set(self.color_of.values())):
                if color == own_color:
                    continue
                rules.append(
                    Rule(
                        priority=CATCH_PRIORITY,
                        match=Match.build(
                            **{self.field1.value: self.base1 + color}
                        ),
                        actions=ActionList((Forward(CONTROLLER_PORT),)),
                    )
                )
            return rules
        # Strategy 2: one catch rule on H2=own, filters on H1=other.
        assert self.field2 is not None
        rules.append(
            Rule(
                priority=CATCH_PRIORITY,
                match=Match.build(
                    **{self.field2.value: self.base2 + own_color}
                ),
                actions=ActionList((Forward(CONTROLLER_PORT),)),
            )
        )
        for color in sorted(set(self.color_of.values())):
            if color == own_color:
                continue
            rules.append(
                Rule(
                    priority=FILTER_PRIORITY,
                    match=Match.build(
                        **{self.field1.value: self.base1 + color}
                    ),
                    actions=ActionList((Drop(),)),
                )
            )
        return rules

    def probe_match(self, probed_switch, downstream_switch) -> Match:
        """Reserved-field values a probe must carry (the Collect match).

        Strategy 1: ``H = value(color(probed))`` — not caught at the
        probed switch, caught at any neighbor.  Strategy 2 additionally
        pins ``H2`` to the downstream switch's identifier.
        """
        if self.strategy == 1:
            return Match.build(
                **{self.field1.value: self.value1(probed_switch)}
            )
        assert self.field2 is not None
        if self.color_of[probed_switch] == self.color_of[downstream_switch]:
            raise ValueError(
                "probed and downstream switch share a color; the squared-"
                "graph coloring should have prevented this"
            )
        return Match.build(
            **{
                self.field1.value: self.value1(probed_switch),
                self.field2.value: self.value2(downstream_switch),
            }
        )


def plan_catching_rules(
    topology: nx.Graph,
    strategy: int = 1,
    algorithm: ColoringAlgorithm = ColoringAlgorithm.EXACT,
    field1: FieldName = FieldName.DL_VLAN,
    field2: FieldName = FieldName.NW_TOS,
    base1: int = 0xF00,
    base2: int = 0x20,
) -> CatchingPlan:
    """Compute a catching plan for a topology.

    Args:
        topology: switch-level graph (nodes = switches, edges = links).
        strategy: 1 (single reserved field) or 2 (two fields).
        algorithm: coloring solver; ``NONE`` assigns each switch its own
            identifier (the paper's non-optimized baseline).
        field1 / field2: reserved header fields.
        base1 / base2: first reserved value in each field.

    Raises:
        CapacityError: if the identifiers do not fit the fields.
    """
    if strategy not in (1, 2):
        raise ValueError(f"unknown strategy {strategy}")

    graph = topology if strategy == 1 else square_graph(topology)

    if algorithm is ColoringAlgorithm.NONE:
        coloring = {
            node: i for i, node in enumerate(sorted(topology.nodes, key=repr))
        }
    elif algorithm is ColoringAlgorithm.EXACT:
        coloring = exact_coloring(graph)
    elif algorithm is ColoringAlgorithm.DSATUR:
        coloring = greedy_coloring(graph, GreedyOrder.DSATUR)
    else:
        coloring = greedy_coloring(graph, GreedyOrder.LARGEST_FIRST)

    if algorithm is not ColoringAlgorithm.NONE and not is_proper_coloring(
        graph, coloring
    ):
        raise AssertionError("coloring solver produced an improper coloring")

    colors_used = len(set(coloring.values())) if coloring else 0
    if base1 + colors_used - 1 > HEADER.field(field1).max_value:
        raise CapacityError(
            f"{colors_used} identifiers exceed {field1} capacity "
            f"starting at {base1:#x}"
        )
    if strategy == 2 and base2 + colors_used - 1 > HEADER.field(
        field2
    ).max_value:
        raise CapacityError(
            f"{colors_used} identifiers exceed {field2} capacity "
            f"starting at {base2:#x}"
        )

    return CatchingPlan(
        strategy=strategy,
        color_of=coloring,
        field1=field1,
        field2=field2 if strategy == 2 else None,
        base1=base1,
        base2=base2,
    )
