"""Coloring validation helpers (used by tests and the catching planner)."""

from __future__ import annotations

import networkx as nx


def is_proper_coloring(graph: nx.Graph, coloring: dict) -> bool:
    """True when all nodes are colored and no edge is monochromatic."""
    for node in graph.nodes:
        if node not in coloring:
            return False
    for u, v in graph.edges:
        if u != v and coloring[u] == coloring[v]:
            return False
    return True


def num_colors(coloring: dict) -> int:
    """Number of distinct colors used."""
    if not coloring:
        return 0
    return len(set(coloring.values()))
